"""Multivalued agreement on top of the paper's binary algorithms.

Section 5 fixes ``V = {0, 1}`` and notes that *"if the transmitter can
send more than two values, one has to modify the algorithms slightly"*.
The classic slight modification is bit decomposition: encode the value in
``w`` bits and run ``w`` independent copies of a binary algorithm — one
per bit — side by side; decode the agreed bits at the end.

Agreement carries over bit-wise (each copy agrees); validity carries over
because a correct transmitter feeds every copy the bits of its real value.
A faulty transmitter can mix bits of different values, making correct
processors agree on a value *nobody proposed* — that is permitted by the
Byzantine Agreement conditions (agreement constrains faulty transmitters
no further), and is the well-known price of the bit-wise reduction.

Cost: ``w`` times the binary algorithm's messages in the same number of
phases (copies run concurrently; per-copy messages are tagged and bundled
per destination so the message *count* reflects the actual envelopes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.algorithms.base import AgreementAlgorithm, Processor, input_value_from
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Context
from repro.core.types import ProcessorId, Value


@dataclass(frozen=True, slots=True)
class BitMessage:
    """A payload of bit-copy number *bit* of the parallel composition."""

    bit: int
    payload: object


def encode_bits(value: int, width: int) -> list[int]:
    """Little-endian bit encoding of *value*."""
    if not 0 <= value < (1 << width):
        raise ConfigurationError(
            f"value {value} does not fit in {width} bits"
        )
    return [(value >> i) & 1 for i in range(width)]


def decode_bits(bits: Sequence[int]) -> int:
    """Inverse of :func:`encode_bits`."""
    return sum((1 << i) for i, bit in enumerate(bits) if bit)


class MultivaluedProcessor(Processor):
    """Runs ``width`` binary protocol instances in lockstep."""

    def __init__(self, copies: Sequence[Processor], width: int) -> None:
        self.copies = tuple(copies)
        self.width = width

    def on_bind(self) -> None:
        for bit, copy in enumerate(self.copies):
            copy.bind(
                Context(
                    pid=self.ctx.pid,
                    n=self.ctx.n,
                    t=self.ctx.t,
                    transmitter=self.ctx.transmitter,
                    key=self.ctx.key,
                    service=self.ctx.service,
                )
            )

    def _split_inbox(self, inbox: Sequence[Envelope]) -> list[list[Envelope]]:
        """Route each wrapped payload to its bit copy.

        The transmitter's input edge is decomposed into per-bit input
        edges so each copy sees a phase-0 inedge carrying its own bit.
        """
        per_bit: list[list[Envelope]] = [[] for _ in range(self.width)]
        for envelope in inbox:
            if envelope.is_input_edge():
                for bit, value in enumerate(encode_bits(envelope.payload, self.width)):
                    per_bit[bit].append(
                        Envelope(
                            src=envelope.src,
                            dst=envelope.dst,
                            phase=envelope.phase,
                            payload=value,
                        )
                    )
                continue
            message = envelope.payload
            if not isinstance(message, BitMessage):
                continue
            if not 0 <= message.bit < self.width:
                continue
            per_bit[message.bit].append(
                Envelope(
                    src=envelope.src,
                    dst=envelope.dst,
                    phase=envelope.phase,
                    payload=message.payload,
                )
            )
        return per_bit

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        per_bit = self._split_inbox(inbox)
        outgoing: list[Outgoing] = []
        for bit, copy in enumerate(self.copies):
            for dst, payload in copy.on_phase(phase, tuple(per_bit[bit])):
                outgoing.append((dst, BitMessage(bit=bit, payload=payload)))
        return outgoing

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        per_bit = self._split_inbox(inbox)
        for bit, copy in enumerate(self.copies):
            copy.on_final(tuple(per_bit[bit]))

    def decision(self) -> Value | None:
        bits = [copy.decision() for copy in self.copies]
        if any(bit is None for bit in bits):
            return None
        return decode_bits([int(bool(bit)) for bit in bits])


class MultivaluedAgreement(AgreementAlgorithm):
    """Bit-parallel composition of a binary agreement algorithm.

    ``inner_factory`` builds the binary algorithm (same ``n``, ``t``);
    values are integers in ``range(2 ** width)``.
    """

    name = "multivalued"
    authenticated = True
    #: all budgets scale with the wrapped binary algorithm — computed from
    #: the inner instances at runtime.
    phase_bound = "derived"
    message_bound = "derived"
    signature_bound = "derived"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        width: int,
        inner_factory: Callable[[int, int], AgreementAlgorithm],
    ) -> None:
        super().__init__(n, t)
        if width < 1:
            raise ConfigurationError(f"need at least one bit, got width={width}")
        self.width = width
        self._inner = [inner_factory(n, t) for _ in range(width)]
        self.name = f"multivalued-{self._inner[0].name}"
        self.authenticated = self._inner[0].authenticated
        phase_counts = {inner.num_phases() for inner in self._inner}
        if len(phase_counts) != 1:
            raise ConfigurationError("inner algorithms disagree on phase count")

    def num_phases(self) -> int:
        return self._inner[0].num_phases()

    def make_processor(self, pid: ProcessorId) -> Processor:
        copies = [inner.make_processor(pid) for inner in self._inner]
        return MultivaluedProcessor(copies, self.width)

    def upper_bound_messages(self) -> int | None:
        inner_bound = self._inner[0].upper_bound_messages()
        if inner_bound is None:
            return None
        return self.width * inner_bound
