"""Registry of the implemented agreement algorithms.

Maps short names to constructors with a uniform ``(n, t, **params)``
signature, plus metadata used by the comparison tables (experiment E11).
The strawmen are registered separately — they are counterexamples, not
algorithms anyone should run — and so is the approximate/randomized
workload family (``WORKLOADS``): those solve a *different problem*
(ε-agreement, probabilistic termination) with their own resilience
domains (``n > 3t`` / ``n > 5t``), so zoo-wide exact-BA sweeps must not
instantiate them at arbitrary ``(n, t)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.algorithms.active_set import ActiveSetBroadcast
from repro.approx.benor import BenOr
from repro.approx.filtered_mean import FilteredMeanApprox
from repro.approx.midpoint import MidpointApprox
from repro.approx.strawman import OvershootMidpoint
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.cheap_strawman import EchoBroadcast, UnderSigningBroadcast
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.informed import InformedAlgorithm2
from repro.algorithms.oral_messages import OralMessages
from repro.algorithms.phase_king import PhaseKing
from repro.core.protocol import AgreementAlgorithm


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry entry: constructor plus table metadata."""

    name: str
    build: Callable[..., AgreementAlgorithm]
    authenticated: bool
    source: str  # citation within the paper
    phases_formula: str
    messages_formula: str
    #: Workload family: ``"exact"`` (classic BA), ``"approx"``
    #: (ε-agreement) or ``"randomized"`` (probabilistic termination,
    #: flips coins).  ``repro list`` shows it and the service load
    #: generator uses it to pick valid mixes (coin seeds for randomized
    #: entries, fault plans for exact ones).
    family: str = "exact"

    def __call__(self, n: int, t: int, **params) -> AgreementAlgorithm:
        return self.build(n, t, **params)


ALGORITHMS: dict[str, AlgorithmInfo] = {
    info.name: info
    for info in (
        AlgorithmInfo(
            name="dolev-strong",
            build=DolevStrong,
            authenticated=True,
            source="baseline [9], classic form",
            phases_formula="t + 1",
            messages_formula="O(n^2)",
        ),
        AlgorithmInfo(
            name="active-set",
            build=ActiveSetBroadcast,
            authenticated=True,
            source="baseline [9], active-set form",
            phases_formula="t + 2",
            messages_formula="O(nt + t^2)",
        ),
        AlgorithmInfo(
            name="oral-messages",
            build=OralMessages,
            authenticated=False,
            source="baseline [14], OM(t)",
            phases_formula="t + 1",
            messages_formula="O(n^t)",
        ),
        AlgorithmInfo(
            name="algorithm-1",
            build=Algorithm1,
            authenticated=True,
            source="Theorem 3",
            phases_formula="t + 2",
            messages_formula="2t^2 + 2t",
        ),
        AlgorithmInfo(
            name="algorithm-2",
            build=Algorithm2,
            authenticated=True,
            source="Theorem 4",
            phases_formula="3t + 3",
            messages_formula="5t^2 + 5t",
        ),
        AlgorithmInfo(
            name="algorithm-3",
            build=Algorithm3,
            authenticated=True,
            source="Lemma 1 / Theorem 5",
            phases_formula="t + 2s + 3",
            messages_formula="2n + 4tn/s + 3t^2 s",
        ),
        AlgorithmInfo(
            name="algorithm-5",
            build=Algorithm5,
            authenticated=True,
            source="Lemma 5 / Theorem 7",
            phases_formula="~ 3t + 4s",
            messages_formula="O(t^2 + nt/s)",
        ),
        AlgorithmInfo(
            name="informed-algorithm-2",
            build=InformedAlgorithm2,
            authenticated=True,
            source="Section 5's n < α remedy (Algorithm 2 + informing phase)",
            phases_formula="3t + 4",
            messages_formula="5t^2 + 5t + (t+1)(n-2t-1)",
        ),
        AlgorithmInfo(
            name="phase-king",
            build=PhaseKing,
            authenticated=False,
            source="post-paper reference (Berman-Garay 1989)",
            phases_formula="2t + 3",
            messages_formula="O(t n^2)",
        ),
    )
}

STRAWMEN: dict[str, AlgorithmInfo] = {
    info.name: info
    for info in (
        AlgorithmInfo(
            name="strawman-undersigning",
            build=UnderSigningBroadcast,
            authenticated=True,
            source="counterexample for Theorems 1 and 2",
            phases_formula="1",
            messages_formula="n - 1",
        ),
        AlgorithmInfo(
            name="strawman-echo",
            build=EchoBroadcast,
            authenticated=True,
            source="counterexample: volume without signature diversity",
            phases_formula="2",
            messages_formula="(n-1)^2",
        ),
        AlgorithmInfo(
            name="strawman-overshoot",
            build=OvershootMidpoint,
            authenticated=False,
            source="counterexample: untrimmed midpoint breaks ε-validity",
            phases_formula="m",
            messages_formula="m n (n-1)",
            family="approx",
        ),
    )
}

#: The approximate / randomized consensus family.  Kept out of
#: ``ALGORITHMS`` deliberately: exact-BA comparison sweeps build every
#: ``ALGORITHMS`` entry at shared ``(n, t)`` grid points and check the
#: exact BA conditions, neither of which applies here.
WORKLOADS: dict[str, AlgorithmInfo] = {
    info.name: info
    for info in (
        AlgorithmInfo(
            name="midpoint-approx",
            build=MidpointApprox,
            authenticated=False,
            source="ε-agreement, midpoint rule (DLPSW 1986; n > 3t)",
            phases_formula="m = ceil(log2(K/eps))",
            messages_formula="m n (n-1)",
            family="approx",
        ),
        AlgorithmInfo(
            name="filtered-mean-approx",
            build=FilteredMeanApprox,
            authenticated=False,
            source="ε-agreement, trimmed-mean rule (rate t/(n-2t); n > 3t)",
            phases_formula="m = ceil(log_{1/rate}(K/eps))",
            messages_formula="m n (n-1)",
            family="approx",
        ),
        AlgorithmInfo(
            name="ben-or",
            build=BenOr,
            authenticated=False,
            source="randomized consensus (Ben-Or 1983; n > 5t)",
            phases_formula="2 per round, geometric rounds",
            messages_formula="2 m n (n-1) cap",
            family="randomized",
        ),
    )
}


def _fold(name: str) -> str:
    """Spelling-insensitive key: lower-case, separators dropped.

    Lets the CLI accept ``algorithm1``, ``Algorithm_1`` or ``ALGORITHM-1``
    for the canonical ``algorithm-1``.
    """
    return name.strip().lower().replace("-", "").replace("_", "").replace(" ", "")


def get(name: str) -> AlgorithmInfo:
    """Look up a registered algorithm (strawmen and workloads included).

    Exact canonical names win; otherwise the lookup is insensitive to
    case and to ``-``/``_`` separators (see :func:`_fold`).
    """
    registries = (ALGORITHMS, WORKLOADS, STRAWMEN)
    for registry in registries:
        if name in registry:
            return registry[name]
    folded = _fold(name)
    for registry in registries:
        for canonical in sorted(registry):
            if _fold(canonical) == folded:
                return registry[canonical]
    known = sorted(ALGORITHMS) + sorted(WORKLOADS) + sorted(STRAWMEN)
    raise KeyError(f"unknown algorithm {name!r}; known: {known}")
