"""Algorithm 5 of the paper: ``O(n + t²)`` messages for any ratio ``n : t``.

This is the algorithm that matches the Theorem 2 lower bound.  Structure:

* ``α`` — the smallest perfect square above ``6t`` — processors are
  *active*; the first ``2t + 1`` of them run Algorithm 2 (phases
  ``1 .. 3t+3``) and, at phase ``3t + 4``, the first ``t + 1`` send a
  *valid message* to the remaining ``α − 2t − 1`` actives.  A **valid
  message** is a value from ``W`` followed by at least ``t + 1`` signatures
  of active processors (and possibly some passive ones) — at least one
  correct processor vouches for its value.
* The ``m = n − α`` *passive* processors are partitioned into complete
  binary trees of size ``s`` (``λ = ⌈log₂(s+1)⌉`` levels; the remainder
  forms one truncated tree — DESIGN.md §5.2).
* Blocks ``x = λ .. 1`` activate subtrees top-down.  In block ``x`` every
  active ``p`` sends a valid message plus a *proof of work* to the root of
  each depth-``x`` subtree in its set ``C(p, x)``; an activated root
  sequentially visits its subtree members (each signs the valid message)
  and reports the accumulated message to all actives; the actives then run
  Algorithm 4 among themselves to exchange their *F-lists* — the passive
  processors whose signature is still missing — and from the gathered,
  signed lists compute ``B(p, x−1)`` (processors at least ``α − 2t``
  actives still consider unserved) and ``C(p, x−1)`` (the depth-``x−1``
  subtrees whose activation those lists justify).
* Block ``0`` is a single phase: every active sends the valid message
  directly to every processor still in ``B(p, 0)``.

A *proof of work* for a depth-``x`` subtree is empty for ``x = λ`` and
otherwise a set of signed F-list strings (index ``x``) establishing
``π(M, q, x) ≥ α − 2t`` either for the subtree's root or for one processor
in each of its two child subtrees.  Roots verify proofs before activating,
which is what bounds spurious activations (Lemma 4: at most ``2·b(C) + 1``
processors of a tree with ``b(C)`` faulty members are activated or faulty).

Lemma 5: with ``1 ≤ s ≤ t < n/6``, agreement in at most ``≈ 3t + 4s``
phases and ``O(t² + nt/s)`` messages; Theorem 7: ``s = t`` gives
``O(n + t²)``.

Block phase layout used here (lengths differ from the paper's sloppy
``2^{x+1}`` by a small constant; see DESIGN.md §5.2 — the asymptotics are
unchanged).  ``L = 2^x − 1`` is the full depth-``x`` subtree size:

====================  =====================================================
offset in block ``x``  action
====================  =====================================================
1                      actives send ``(valid message, proof)`` to roots
``2(j−1)``, j=2..L     root sends the accumulating message to ``c(j)``
``2(j−1)+1``           ``c(j)`` signs it and sends it back
``2L``                 root reports the accumulated message to all actives
``2L+1 .. 2L+3``       actives run Algorithm 4 on ``(x−1, F(p, x−1))``
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.algorithms.algorithm2 import (
    Algorithm2,
    Algorithm2Processor,
    Algorithm2Transmitter,
)
from repro.algorithms.algorithm4 import GridExchange
from repro.algorithms.base import AgreementAlgorithm, Processor
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Context
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain
from repro.network.topology import BinaryTree, Grid, TreeForest, smallest_square_above

#: Tag for the F-list strings exchanged through Algorithm 4.
FLIST_TAG = "flist"


def flist_string(index: int, members: Iterable[ProcessorId]) -> tuple:
    """The canonical F-list value: ``(tag, index, sorted member tuple)``."""
    return (FLIST_TAG, index, tuple(sorted(members)))


def parse_flist(value: object) -> tuple[int, frozenset[ProcessorId]] | None:
    """Parse a gathered exchange value back into ``(index, members)``."""
    if (
        isinstance(value, tuple)
        and len(value) == 3
        and value[0] == FLIST_TAG
        and isinstance(value[1], int)
        and isinstance(value[2], tuple)
        and all(isinstance(q, int) for q in value[2])
    ):
        return value[1], frozenset(value[2])
    return None


@dataclass(frozen=True)
class Activation:
    """What an active sends a subtree root: a valid message plus the signed
    F-list strings that prove the subtree needs activating."""

    message: SignatureChain
    proof: tuple[SignatureChain, ...]


@dataclass(frozen=True)
class SubtreeRef:
    """A subtree: tree number within the forest plus root heap index."""

    tree: int
    root_index: int


@dataclass(frozen=True)
class Block:
    """One activation block of the schedule."""

    x: int
    start: int  # first phase of the block
    full_size: int  # L = 2^x - 1

    @property
    def length(self) -> int:
        return 2 * self.full_size + 3

    def offset(self, phase: int) -> int:
        return phase - self.start + 1


class Algorithm5Schedule:
    """Maps global phases to (block, offset) and back."""

    def __init__(self, t: int, levels: int) -> None:
        self.t = t
        self.levels = levels
        self.spread_phase = 3 * t + 4
        self.blocks: list[Block] = []
        start = self.spread_phase + 1
        for x in range(levels, 0, -1):
            block = Block(x=x, start=start, full_size=(1 << x) - 1)
            self.blocks.append(block)
            start += block.length
        self.block0_phase = start
        self.num_phases = start

    def block_for(self, phase: int) -> Block | None:
        for block in self.blocks:
            if block.start <= phase < block.start + block.length:
                return block
        return None

    def previous_block(self, block: Block) -> Block | None:
        index = self.blocks.index(block)
        return self.blocks[index - 1] if index > 0 else None


def is_valid_message(
    payload: object, t: int, alpha: int, ctx: Context
) -> bool:
    """The paper's validity test: a verified chain carrying at least
    ``t + 1`` distinct signatures of active processors."""
    if not isinstance(payload, SignatureChain) or not payload.verify(ctx.service):
        return False
    active_signers = {s for s in payload.signers if 0 <= s < alpha}
    return len(active_signers) >= t + 1


def count_pi(
    strings: Mapping[ProcessorId, set],
    q: ProcessorId,
    index: int,
) -> int:
    """``π(M, q, index)``: distinct active signers whose gathered string has
    the given index and lists ``q``."""
    count = 0
    for _signer, values in sorted(strings.items()):
        if any(
            parsed is not None and parsed[0] == index and q in parsed[1]
            for parsed in map(parse_flist, values)
        ):
            count += 1
    return count


class Algorithm5Active(Processor):
    """An active processor (core Algorithm 2 participant or extra)."""

    def __init__(
        self,
        inner: Algorithm2Processor | Algorithm2Transmitter | None,
        schedule: Algorithm5Schedule,
        forest: TreeForest,
        alpha: int,
        grid: Grid,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self.forest = forest
        self.alpha = alpha
        self.grid = grid
        self.valid_message: SignatureChain | None = None
        #: B(p, x) for the upcoming block; starts as all passive processors.
        self.b_set: frozenset[ProcessorId] = frozenset(forest.all_passive())
        #: C(p, x): subtrees to activate in the upcoming block.
        self.c_set: list[SubtreeRef] = [
            SubtreeRef(tree=i, root_index=1) for i in range(len(forest.trees))
        ]
        #: proofs backing each subtree in c_set (empty for block λ).
        self.proofs: dict[SubtreeRef, tuple[SignatureChain, ...]] = {}
        #: passive signatures seen in reports during the current block.
        self._signers_seen: set[ProcessorId] = set()
        #: roots contacted in the current block (excluded from F unconditionally).
        self._roots_contacted: set[ProcessorId] = set()
        self._exchange: GridExchange | None = None
        self._f_list: frozenset[ProcessorId] = frozenset()

    def on_bind(self) -> None:
        if self.inner is not None:
            core_n = 2 * self.ctx.t + 1
            self.inner.bind(
                Context(
                    pid=self.ctx.pid,
                    n=core_n,
                    t=self.ctx.t,
                    transmitter=self.ctx.transmitter,
                    key=self.ctx.key,
                    service=self.ctx.service,
                )
            )

    # --------------------------------------------------------------- helpers

    def _build_valid_message(self) -> SignatureChain | None:
        """Turn Algorithm 2's proof into a valid message (≥ t+1 active sigs)."""
        assert self.inner is not None
        proof = self.inner.best_proof
        if proof is None:
            return None
        if not proof.has_signed(self.ctx.pid):
            proof = proof.extend(self.ctx.key, self.ctx.service)
        if is_valid_message(proof, self.ctx.t, self.alpha, self.ctx):
            return proof
        return None

    def _adopt_valid_message(self, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            if self.valid_message is not None:
                return
            if is_valid_message(envelope.payload, self.ctx.t, self.alpha, self.ctx):
                self.valid_message = envelope.payload

    def _root_pid(self, ref: SubtreeRef) -> ProcessorId:
        return self.forest.trees[ref.tree].processor_at(ref.root_index)

    def _activations(self) -> list[Outgoing]:
        if self.valid_message is None:
            return []
        self._signers_seen = set()
        self._roots_contacted = set()
        sends: list[Outgoing] = []
        for ref in self.c_set:
            tree = self.forest.trees[ref.tree]
            if not tree.exists(ref.root_index):
                continue
            root = self._root_pid(ref)
            self._roots_contacted.add(root)
            payload = Activation(
                message=self.valid_message, proof=self.proofs.get(ref, ())
            )
            sends.append((root, payload))
        return sends

    def _collect_reports(self, inbox: Sequence[Envelope]) -> None:
        """Record passive signatures from valid messages roots send back."""
        for envelope in inbox:
            if envelope.src not in self._roots_contacted:
                continue
            if is_valid_message(envelope.payload, self.ctx.t, self.alpha, self.ctx):
                chain: SignatureChain = envelope.payload
                self._signers_seen.update(
                    s for s in chain.signers if s >= self.alpha
                )

    def _start_exchange(self, index: int) -> list[Outgoing]:
        self._f_list = frozenset(
            q
            for q in self.b_set
            if q not in self._signers_seen and q not in self._roots_contacted
        )
        value = flist_string(index, self._f_list)
        self._exchange = GridExchange(self.ctx, self.grid, value)
        return self._exchange.outgoing(1, ())

    def _finish_exchange(self, inbox: Sequence[Envelope], index: int) -> None:
        """Absorb the last exchange step; recompute B and C for index ``x-1``."""
        assert self._exchange is not None
        self._exchange.absorb_final(inbox)
        strings = self._exchange.gathered
        threshold = self.alpha - 2 * self.ctx.t

        def qualifies(q: ProcessorId) -> bool:
            """Whether the candidate chain passes the block's filter."""
            return count_pi(strings, q, index) >= threshold

        self.b_set = frozenset(q for q in self._f_list if qualifies(q))

        new_c: list[SubtreeRef] = []
        new_proofs: dict[SubtreeRef, tuple[SignatureChain, ...]] = {}
        for tree_number, tree in enumerate(self.forest.trees):
            for root_index in tree.roots_at_depth(index):
                ref = SubtreeRef(tree=tree_number, root_index=root_index)
                if self._subtree_proven(tree, root_index, qualifies):
                    new_c.append(ref)
                    new_proofs[ref] = self._proof_chains(index)
        self.c_set = new_c
        self.proofs = new_proofs
        self._exchange = None

    def _subtree_proven(
        self, tree: BinaryTree, root_index: int, qualifies
    ) -> bool:
        """The paper's proof-of-work condition for one subtree."""
        root = tree.processor_at(root_index)
        if qualifies(root):
            return True
        children = tree.children(root_index)
        if len(children) < 2:
            return False
        return all(
            any(qualifies(q) for q in tree.subtree_members(child))
            for child in children
        )

    def _proof_chains(self, index: int) -> tuple[SignatureChain, ...]:
        """All gathered signed F-list strings with the given index.

        Sent wholesale as the transferable proof; roots re-derive π from
        them, so including extra strings is harmless.
        """
        assert self._exchange is not None
        chains: list[SignatureChain] = []
        for _signer, per_signer in sorted(self._exchange.chains.items()):
            for value, chain in sorted(per_signer.items()):
                parsed = parse_flist(value)
                if parsed is not None and parsed[0] == index:
                    chains.append(chain)
        return tuple(chains)

    # ----------------------------------------------------------------- phases

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        t = self.ctx.t
        if phase <= 3 * t + 3:
            if self.inner is not None:
                return self.inner.on_phase(phase, inbox)
            return []
        if phase == self.schedule.spread_phase:  # 3t + 4
            if self.inner is None:
                return []
            self.inner.on_final(inbox)
            self.valid_message = self._build_valid_message()
            if self.ctx.pid < t + 1 and self.valid_message is not None:
                extras = range(2 * t + 1, self.alpha)
                return [(q, self.valid_message) for q in extras]
            return []
        if phase == self.schedule.block0_phase:
            return self._block0(inbox)
        block = self.schedule.block_for(phase)
        if block is None:
            return []
        return self._block_phase(block, block.offset(phase), inbox)

    def _block_phase(
        self, block: Block, offset: int, inbox: Sequence[Envelope]
    ) -> list[Outgoing]:
        L = block.full_size
        if offset == 1:
            if block.x == self.schedule.levels:
                # extra actives adopt their valid message from phase 3t+4.
                self._adopt_valid_message(inbox)
            else:
                self._finish_exchange(inbox, index=block.x)
            return self._activations()
        if offset == 2 * L + 1:
            self._collect_reports(inbox)
            return self._start_exchange(index=block.x - 1)
        if offset == 2 * L + 2:
            assert self._exchange is not None
            return self._exchange.outgoing(2, inbox)
        if offset == 2 * L + 3:
            assert self._exchange is not None
            return self._exchange.outgoing(3, inbox)
        return []

    def _block0(self, inbox: Sequence[Envelope]) -> list[Outgoing]:
        if self.valid_message is None:
            # with no tree blocks (n == α) the spread-phase messages arrive
            # here; extras adopt their valid message now.
            self._adopt_valid_message(inbox)
        if self.schedule.blocks:
            self._finish_exchange(inbox, index=0)
        if self.valid_message is None:
            return []
        return [(q, self.valid_message) for q in sorted(self.b_set)]

    def decision(self) -> Value | None:
        if self.inner is not None:
            return self.inner.decision()
        if self.valid_message is not None:
            return self.valid_message.value
        return None


class Algorithm5Passive(Processor):
    """A passive processor: subtree member everywhere, root of exactly one
    subtree (the one hanging off its own node)."""

    def __init__(
        self,
        schedule: Algorithm5Schedule,
        forest: TreeForest,
        tree_number: int,
        alpha: int,
    ) -> None:
        self.schedule = schedule
        self.forest = forest
        self.tree_number = tree_number
        self.alpha = alpha
        self.first_valid: SignatureChain | None = None
        # Root-duty state.
        self.activated_block: int | None = None
        self._m: SignatureChain | None = None
        #: BFS order of our own subtree (filled when activated).
        self._visit_order: list[ProcessorId] = []

    # --------------------------------------------------------------- helpers

    @property
    def tree(self) -> BinaryTree:
        return self.forest.trees[self.tree_number]

    @property
    def heap_index(self) -> int:
        return self.tree.index_of(self.ctx.pid)

    @property
    def root_block(self) -> int:
        """The block in which this node's own subtree is activated."""
        return self.schedule.levels - self.tree.level_of_index(self.heap_index) + 1

    def _ancestor_at_block(self, x: int) -> ProcessorId | None:
        """The root of the depth-``x`` subtree we belong to (None if we sit
        above depth ``x``)."""
        level = self.schedule.levels - x + 1
        my_level = self.tree.level_of_index(self.heap_index)
        if my_level < level:
            return None
        index = self.heap_index >> (my_level - level)
        return self.tree.processor_at(index)

    def _position_in_subtree(self, x: int) -> int | None:
        """Our 1-based BFS position ``j`` within our depth-``x`` subtree."""
        level = self.schedule.levels - x + 1
        my_level = self.tree.level_of_index(self.heap_index)
        if my_level < level:
            return None
        root_index = self.heap_index >> (my_level - level)
        order = self.tree.subtree_indices(root_index)
        return order.index(self.heap_index) + 1

    def _note_valid(self, chain: SignatureChain) -> None:
        if self.first_valid is None:
            self.first_valid = chain

    def _is_valid(self, payload: object) -> bool:
        return is_valid_message(payload, self.ctx.t, self.alpha, self.ctx)

    # -------------------------------------------------------- proof checking

    def _verify_proof(self, proof: tuple, x: int) -> bool:
        """Verify a proof of work for our own depth-``x`` subtree."""
        if x == self.schedule.levels:
            return True
        if not isinstance(proof, tuple):
            return False
        # collect, per active signer, the F-lists with index x it signed.
        listed: dict[ProcessorId, set[frozenset[ProcessorId]]] = {}
        for chain in proof:
            if not isinstance(chain, SignatureChain) or len(chain) != 1:
                continue
            signer = chain.signers[0]
            if not 0 <= signer < self.alpha:
                continue
            parsed = parse_flist(chain.value)
            if parsed is None or parsed[0] != x:
                continue
            if not chain.verify(self.ctx.service):
                continue
            listed.setdefault(signer, set()).add(parsed[1])

        threshold = self.alpha - 2 * self.ctx.t

        def pi(q: ProcessorId) -> int:
            """The processor at position *index* of the tree permutation."""
            return sum(
                1
                for lists in listed.values()
                if any(q in members for members in lists)
            )

        if pi(self.ctx.pid) >= threshold:
            return True
        children = self.tree.children(self.heap_index)
        if len(children) < 2:
            return False
        return all(
            any(pi(q) >= threshold for q in self.tree.subtree_members(child))
            for child in children
        )

    # ----------------------------------------------------------------- phases

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        block = self.schedule.block_for(phase)
        if block is None:
            return []
        offset = block.offset(phase)
        sends: list[Outgoing] = []
        sends.extend(self._root_duty(block, offset, inbox))
        sends.extend(self._member_duty(block, offset, inbox))
        return sends

    def _root_duty(
        self, block: Block, offset: int, inbox: Sequence[Envelope]
    ) -> list[Outgoing]:
        """The root acts at even offsets ``2k``:

        * ``k = 1`` — the activations (sent at offset 1) arrive; on a valid
          one, adopt the message and send it to ``c(2)``;
        * ``k = 2 .. S`` — ``c(k)``'s signed response (sent at ``2k − 1``)
          arrives; absorb it and forward to ``c(k+1)``;
        * ``offset = 2L`` — report the accumulated message to every active
          (``S ≤ L``; a truncated subtree idles until the uniform report
          offset so the actives collect all reports in one phase).
        """
        if block.x != self.root_block:
            return []
        L = block.full_size
        if offset % 2 != 0 or offset > 2 * L:
            return []
        k = offset // 2
        sends: list[Outgoing] = []
        if k == 1:
            self._try_activate(block, inbox)
            if self._m is not None and len(self._visit_order) >= 2:
                sends.append((self._visit_order[1], self._m))
        elif self._m is not None and 2 <= k <= len(self._visit_order):
            self._absorb_response(inbox, k)
            if k < len(self._visit_order):
                sends.append((self._visit_order[k], self._m))
        if offset == 2 * L and self._m is not None:
            sends.extend((q, self._m) for q in range(self.alpha))
        return sends

    def _try_activate(self, block: Block, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            if not 0 <= envelope.src < self.alpha:
                continue
            payload = envelope.payload
            if not isinstance(payload, Activation):
                continue
            if not self._is_valid(payload.message):
                continue
            if not self._verify_proof(payload.proof, block.x):
                continue
            self.activated_block = block.x
            self._m = payload.message
            self._note_valid(payload.message)
            self._visit_order = self.tree.subtree_members(self.heap_index)
            return

    def _absorb_response(self, inbox: Sequence[Envelope], j: int) -> None:
        if j < 2 or j > len(self._visit_order) or self._m is None:
            return
        expected_member = self._visit_order[j - 1]
        for envelope in inbox:
            if envelope.src != expected_member:
                continue
            chain = envelope.payload
            if (
                isinstance(chain, SignatureChain)
                and chain.value == self._m.value
                and chain.signers == self._m.signers + (expected_member,)
                and chain.verify(self.ctx.service)
            ):
                self._m = chain
                return

    def _member_duty(
        self, block: Block, offset: int, inbox: Sequence[Envelope]
    ) -> list[Outgoing]:
        j = self._position_in_subtree(block.x)
        if j is None or j < 2:
            return []
        # the root sends to c(j) at offset 2(j-1); we answer one phase later.
        if offset != 2 * (j - 1) + 1:
            return []
        root = self._ancestor_at_block(block.x)
        from_root = [e for e in inbox if e.src == root]
        if len(from_root) != 1 or not self._is_valid(from_root[0].payload):
            return []
        chain: SignatureChain = from_root[0].payload
        self._note_valid(chain)
        signed = chain.extend(self.ctx.key, self.ctx.service)
        return [(root, signed)]

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        # block 0: direct deliveries from the actives.
        for envelope in inbox:
            if 0 <= envelope.src < self.alpha and self._is_valid(envelope.payload):
                self._note_valid(envelope.payload)

    def decision(self) -> Value | None:
        return self.first_valid.value if self.first_valid is not None else None


class Algorithm5(AgreementAlgorithm):
    """Lemma 5 / Theorem 7: ``O(t² + nt/s)`` messages in ``≈ 3t + 4s``
    phases; ``s = t`` gives the optimal ``O(n + t²)``."""

    name = "algorithm-5"
    authenticated = True
    value_domain = frozenset({0, 1})
    #: the exact schedule never exceeds the library's closed-form phase
    #: count at tree size ``s`` (fewer levels only shorten it).
    phase_bound = "our_algorithm5_phase_bound(t, s)"
    #: the concrete instantiation of Lemma 5 depends on the schedule and
    #: forest shape — computed by ``upper_bound_messages``.
    message_bound = "derived"
    signature_bound = "unstated"

    def __init__(self, n: int, t: int, *, s: int | None = None) -> None:
        super().__init__(n, t)
        if t < 1:
            raise ConfigurationError("Algorithm 5 needs t >= 1")
        if s is None:
            s = t  # Theorem 7's choice
        if s < 1:
            raise ConfigurationError(f"tree size must be positive, got s={s}")
        self.alpha = smallest_square_above(6 * t)
        if n < self.alpha:
            raise ConfigurationError(
                f"Algorithm 5 needs n >= α = {self.alpha} (the smallest square "
                f"above 6t); for smaller n use Algorithm 2 or Algorithm 3"
            )
        self.s = s
        self.forest = TreeForest(tuple(range(self.alpha, n)), s)
        levels = max(
            (tree.levels for tree in self.forest.trees), default=0
        )
        self.schedule = Algorithm5Schedule(t, levels)
        self.grid = Grid(tuple(range(self.alpha)))
        self._core = Algorithm2(2 * t + 1, t)

    def num_phases(self) -> int:
        return self.schedule.num_phases

    def make_processor(self, pid: ProcessorId) -> Processor:
        if pid < 2 * self.t + 1:
            inner = self._core.make_processor(pid)
            return Algorithm5Active(
                inner, self.schedule, self.forest, self.alpha, self.grid
            )
        if pid < self.alpha:
            return Algorithm5Active(
                None, self.schedule, self.forest, self.alpha, self.grid
            )
        tree_number = next(
            i
            for i, tree in enumerate(self.forest.trees)
            if pid in tree.members
        )
        return Algorithm5Passive(self.schedule, self.forest, tree_number, self.alpha)

    def upper_bound_messages(self) -> int:
        """A concrete (generous) instantiation of Lemma 5's
        ``O(t² + nt/s)``: the Algorithm 2 core, the spread phase, the
        per-block Algorithm 4 gossip, and the tree traffic with the
        Lemma 4 activation bound."""
        t, n, s, alpha = self.t, self.n, self.s, self.alpha
        root_m = self.grid.m
        blocks = len(self.schedule.blocks) + 1
        core = 5 * t * t + 5 * t + (t + 1) * (alpha - 2 * t - 1)
        gossip = blocks * 3 * (root_m - 1) * alpha
        trees = len(self.forest.trees)
        # fault-free tree cost + worst-case faulty surcharge (Lemma 4):
        tree_traffic = trees * (2 * alpha + 2 * s) + t * (4 * alpha + 8 * s)
        return core + gossip + tree_traffic
