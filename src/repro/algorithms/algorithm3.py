"""Algorithm 3 of the paper: linear-message BA for ``n`` up to ``~t³``.

The first ``2t + 1`` processors (including the transmitter) are *active*
and run Algorithm 1 among themselves; the remaining ``m = n - (2t + 1)``
*passive* processors are divided into ``r = ⌈m/s⌉`` disjoint *chain sets*
of size ``s`` (the last set may be smaller), each with a *root* ``c(1)``.

Within each set the root sequentially visits its members: it sends the
accumulating message ``m(j-1)`` to ``c(j)``, who signs it and returns it.
At the end the root reports ``m(s)`` — the agreed value carrying the
signatures of every member it reached — to all active processors, and the
actives directly inform exactly those members whose signature is missing.

Phase schedule (``t + 2s + 3`` phases total):

* ``1 .. t+2``      — actives run Algorithm 1;
* ``t+3``           — every active sends the agreed value to every root;
                      a root's ``m(1)`` is the value received from at least
                      ``t + 1`` actives;
* ``t+2j`` (2≤j≤s)  — root sends ``m(j-1)`` to ``c(j)``;
* ``t+2j+1``        — ``c(j)`` signs and returns it (if well-formed);
* ``t+2s+2``        — root sends ``m(s)`` to every active;
* ``t+2s+3``        — active ``p`` sends the agreed value to every ``c(j)``
                      whose signature is missing from the report ``m(p,C)``
                      (or whose root never reported the correct value).

Decision: actives by Algorithm 1; a root by its ``m(1)``; a member ``c(j)``
by the value received from at least ``t + 1`` actives in the last phase if
any, else by the value its root sent it.

Lemma 1: at most ``2n + 4tn/s + 3t²s`` messages.  Theorem 5: with
``s = 4t`` this is ``O(n + t³)``.

Message formats (all are :class:`~repro.crypto.chains.SignatureChain`s, so
every message carries at least its sender's signature):

* active → root value report: 1-signature chain on the agreed value;
* root → member / member → root: chain whose first signer is the root,
  followed by the signatures of the members visited so far, in set order;
* root → active report: the final such chain;
* active → member direct delivery: 1-signature chain on the agreed value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.algorithms.algorithm1 import (
    Algorithm1,
    Algorithm1Processor,
    Algorithm1Transmitter,
)
from repro.algorithms.base import AgreementAlgorithm, Processor
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Context
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain


@dataclass(frozen=True)
class ChainSet:
    """One chain set ``C``: its members in visit order (root first)."""

    members: tuple[ProcessorId, ...]

    @property
    def root(self) -> ProcessorId:
        return self.members[0]

    @property
    def size(self) -> int:
        return len(self.members)

    def position(self, pid: ProcessorId) -> int:
        """The 1-based label ``j`` of *pid* within the set."""
        return self.members.index(pid) + 1

    def member(self, j: int) -> ProcessorId:
        """The processor ``c(j)`` (1-based)."""
        return self.members[j - 1]


def build_chain_sets(n: int, t: int, s: int) -> list[ChainSet]:
    """Partition the passive processors ``2t+1 .. n-1`` into sets of size *s*."""
    passive = list(range(2 * t + 1, n))
    return [
        ChainSet(tuple(passive[start : start + s]))
        for start in range(0, len(passive), s)
    ]


def count_value_endorsements(
    inbox: Sequence[Envelope],
    senders: frozenset[ProcessorId],
    ctx: Context,
) -> dict[Value, set[ProcessorId]]:
    """Tally verified 1-signature value chains from *senders*, per value.

    Only chains whose single verified signature matches the network-stamped
    source are counted — a faulty processor cannot inflate another value's
    tally or vote twice.
    """
    tally: dict[Value, set[ProcessorId]] = {}
    for envelope in inbox:
        chain = envelope.payload
        if envelope.src not in senders:
            continue
        if not isinstance(chain, SignatureChain) or len(chain) != 1:
            continue
        if chain.signers[0] != envelope.src or not chain.verify(ctx.service):
            continue
        tally.setdefault(chain.value, set()).add(envelope.src)
    return tally


def unique_majority_value(
    tally: dict[Value, set[ProcessorId]], threshold: int
) -> Value | None:
    """The single value endorsed by at least *threshold* distinct senders."""
    winners = sorted(
        (v for v, who in tally.items() if len(who) >= threshold), key=repr
    )
    return winners[0] if len(winners) == 1 else None


class Algorithm3Active(Processor):
    """An active processor: Algorithm 1 role plus chain-set supervision."""

    def __init__(
        self,
        inner: Algorithm1Processor | Algorithm1Transmitter,
        sets: Sequence[ChainSet],
    ) -> None:
        self.inner = inner
        self.sets = tuple(sets)
        #: validated report chains, keyed by root id.
        self.reports: dict[ProcessorId, SignatureChain] = {}
        self.agreed: Value | None = None

    def on_bind(self) -> None:
        active_n = 2 * self.ctx.t + 1
        self.inner.bind(
            Context(
                pid=self.ctx.pid,
                n=active_n,
                t=self.ctx.t,
                transmitter=self.ctx.transmitter,
                key=self.ctx.key,
                service=self.ctx.service,
            )
        )

    # ------------------------------------------------------------ validation

    def _valid_report(self, envelope: Envelope, chain_set: ChainSet) -> bool:
        """A report must be a verified chain rooted at the set's root whose
        remaining signers are set members in visit order."""
        chain = envelope.payload
        if not isinstance(chain, SignatureChain) or len(chain) < 1:
            return False
        if chain.signers[0] != chain_set.root:
            return False
        positions = []
        for signer in chain.signers[1:]:
            if signer not in chain_set.members:
                return False
            positions.append(chain_set.position(signer))
        if positions != sorted(set(positions)) or any(p < 2 for p in positions):
            return False
        return chain.verify(self.ctx.service)

    def _collect_reports(self, inbox: Sequence[Envelope]) -> None:
        roots = {cs.root: cs for cs in self.sets}
        for envelope in inbox:
            chain_set = roots.get(envelope.src)
            if chain_set is None or envelope.src in self.reports:
                continue
            if self._valid_report(envelope, chain_set):
                self.reports[envelope.src] = envelope.payload

    # ----------------------------------------------------------------- phases

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        t = self.ctx.t
        if phase <= t + 2:
            return self.inner.on_phase(phase, inbox)
        if phase == t + 3:
            self.inner.on_final(inbox)
            self.agreed = self.inner.decision()
            chain = SignatureChain.initial(self.agreed, self.ctx.key, self.ctx.service)
            return [(cs.root, chain) for cs in self.sets]
        # every later phase may deliver a (possibly short-set) report.
        self._collect_reports(inbox)
        if phase == self._last_phase():
            return self._direct_deliveries()
        return []

    def _last_phase(self) -> int:
        return self.ctx.t + 2 * self._configured_s() + 3

    def _configured_s(self) -> int:
        return max((cs.size for cs in self.sets), default=0)

    def _direct_deliveries(self) -> list[Outgoing]:
        """Send the agreed value to every member not certified by its root."""
        chain = SignatureChain.initial(self.agreed, self.ctx.key, self.ctx.service)
        sends: list[Outgoing] = []
        for chain_set in self.sets:
            report = self.reports.get(chain_set.root)
            if report is not None and report.value == self.agreed:
                covered = set(report.signers)
            else:
                covered = set()
            sends.extend(
                (member, chain)
                for member in chain_set.members[1:]
                if member not in covered
            )
        return sends

    def decision(self) -> Value | None:
        return self.agreed if self.agreed is not None else self.inner.decision()


class Algorithm3Root(Processor):
    """The root ``c(1)`` of one chain set."""

    def __init__(self, chain_set: ChainSet, actives: frozenset[ProcessorId]) -> None:
        self.chain_set = chain_set
        self.actives = actives
        self.m: SignatureChain | None = None
        self.agreed: Value | None = None

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        t = self.ctx.t
        offset = phase - t
        if offset < 4 or offset % 2 != 0:
            return []
        k = offset // 2  # phase == t + 2k, k = 2 .. size + 1
        size = self.chain_set.size
        if k > size + 1:
            return []
        if k == 2:
            tally = count_value_endorsements(inbox, self.actives, self.ctx)
            self.agreed = unique_majority_value(tally, t + 1)
            if self.agreed is None:
                return []
            self.m = SignatureChain.initial(self.agreed, self.ctx.key, self.ctx.service)
        else:
            self._absorb_response(inbox, visited=self.chain_set.member(k - 1))
        if self.m is None:
            return []
        if k <= size:
            return [(self.chain_set.member(k), self.m)]
        return [(active, self.m) for active in self.actives]

    def _absorb_response(self, inbox: Sequence[Envelope], visited: ProcessorId) -> None:
        """Accept ``m(j-1)`` back from ``c(j)`` with its signature appended."""
        if self.m is None:
            return
        for envelope in inbox:
            if envelope.src != visited:
                continue
            chain = envelope.payload
            if not isinstance(chain, SignatureChain):
                continue
            if (
                chain.value == self.m.value
                and chain.signers == self.m.signers + (visited,)
                and chain.verify(self.ctx.service)
            ):
                self.m = chain
                return

    def decision(self) -> Value | None:
        return self.agreed


class Algorithm3Member(Processor):
    """A non-root member ``c(j)`` (``j ≥ 2``) of one chain set."""

    def __init__(self, chain_set: ChainSet, actives: frozenset[ProcessorId]) -> None:
        self.chain_set = chain_set
        self.actives = actives
        self.root_value: Value | None = None
        self.final_value: Value | None = None

    def _valid_root_message(self, chain: object) -> bool:
        """The root's ``m(j-1)``: rooted at ``c(1)``, then a subsequence of
        ``c(2) .. c(j-1)`` in visit order, verified."""
        if not isinstance(chain, SignatureChain) or len(chain) < 1:
            return False
        if chain.signers[0] != self.chain_set.root:
            return False
        my_position = self.chain_set.position(self.ctx.pid)
        positions = []
        for signer in chain.signers[1:]:
            if signer not in self.chain_set.members:
                return False
            positions.append(self.chain_set.position(signer))
        if positions != sorted(set(positions)):
            return False
        if any(p < 2 or p >= my_position for p in positions):
            return False
        return chain.verify(self.ctx.service)

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        j = self.chain_set.position(self.ctx.pid)
        if phase != self.ctx.t + 2 * j + 1:
            return []
        from_root = [e for e in inbox if e.src == self.chain_set.root]
        if len(from_root) != 1 or not self._valid_root_message(from_root[0].payload):
            return []
        chain = from_root[0].payload
        self.root_value = chain.value
        signed = chain.extend(self.ctx.key, self.ctx.service)
        return [(self.chain_set.root, signed)]

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        tally = count_value_endorsements(inbox, self.actives, self.ctx)
        self.final_value = unique_majority_value(tally, self.ctx.t + 1)

    def decision(self) -> Value | None:
        if self.final_value is not None:
            return self.final_value
        return self.root_value


class Algorithm3(AgreementAlgorithm):
    """Lemma 1 / Theorem 5: ``t + 2s + 3`` phases, ``≤ 2n + 4tn/s + 3t²s``
    messages; ``s = 4t`` gives ``O(n + t³)``."""

    name = "algorithm-3"
    authenticated = True
    value_domain = frozenset({0, 1})
    phase_bound = "lemma1_phases(t, s)"
    message_bound = "lemma1_message_upper_bound(n, t, s)"
    #: generous: every correct message carries at most as many signatures
    #: as the phase bound (the paper bounds only messages here).
    signature_bound = "lemma1_message_upper_bound(n, t, s) * lemma1_phases(t, s)"

    def __init__(self, n: int, t: int, *, s: int | None = None) -> None:
        super().__init__(n, t)
        if t < 1 or n < 2 * t + 1:
            raise ConfigurationError(
                f"Algorithm 3 needs t >= 1 and n >= 2t + 1 (got n={n}, t={t})"
            )
        if s is None:
            s = max(1, 4 * t)  # Theorem 5's choice
        if s < 1:
            raise ConfigurationError(f"chain-set size must be positive, got s={s}")
        self.s = s
        self.sets = build_chain_sets(n, t, s)
        self.actives = frozenset(range(2 * t + 1))
        self._graph_algorithm = Algorithm1(2 * t + 1, t)

    def num_phases(self) -> int:
        effective_s = max((cs.size for cs in self.sets), default=0)
        return self.t + 2 * effective_s + 3

    def make_processor(self, pid: ProcessorId) -> Processor:
        if pid in self.actives:
            inner = self._graph_algorithm.make_processor(pid)
            return Algorithm3Active(inner, self.sets)
        chain_set = next(cs for cs in self.sets if pid in cs.members)
        if pid == chain_set.root:
            return Algorithm3Root(chain_set, self.actives)
        return Algorithm3Member(chain_set, self.actives)
