"""Deliberately under-communicating strawmen for the executable lower bounds.

The lower-bound theorems are *impossibility* results: any algorithm that
beats the signature/message budgets can be broken by a concrete adversary.
To make the proofs executable we need something to break — these strawmen
communicate less than the bounds allow, and the experiments in
:mod:`repro.bounds` construct the proofs' adversaries against them and
exhibit the resulting agreement violations.

They are intentionally *not* exported through the top-level API's algorithm
registry of correct algorithms.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algorithms.base import (
    DEFAULT_VALUE,
    AgreementAlgorithm,
    Processor,
    input_value_from,
)
from repro.core.message import Envelope, Outgoing
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain


class _TrustingReceiver(Processor):
    """Decides on the first signed transmitter value it sees; never relays."""

    def __init__(self, default: Value) -> None:
        self.default = default
        self.received: Value | None = None

    def _absorb(self, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            chain = envelope.payload
            if (
                self.received is None
                and isinstance(chain, SignatureChain)
                and len(chain) == 1
                and chain.signers[0] == self.ctx.transmitter
                and chain.verify(self.ctx.service)
            ):
                self.received = chain.value

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        self._absorb(inbox)
        return []

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        self._absorb(inbox)

    def decision(self) -> Value:
        return self.received if self.received is not None else self.default


class _BroadcastingTransmitter(Processor):
    """Signs its value once and sends it to everyone; nothing more."""

    def __init__(self) -> None:
        self.value: Value | None = None

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase != 1:
            return []
        self.value = input_value_from(inbox)
        chain = SignatureChain.initial(self.value, self.ctx.key, self.ctx.service)
        return [(q, chain) for q in self.ctx.others()]

    def decision(self) -> Value | None:
        return self.value


class UnderSigningBroadcast(AgreementAlgorithm):
    """One-phase "agreement": the transmitter broadcasts, everyone believes.

    Cost: ``n − 1`` messages and ``n − 1`` signatures — every processor
    exchanges signatures with only the transmitter (``|A(p)| = 1 ≤ t``), so
    Theorem 1's splitting adversary breaks it for any ``t ≥ 1``; and each
    receiver gets a single message, below Theorem 2's ``⌈1 + t/2⌉``
    per-``B``-member requirement, so the Theorem 2 switch breaks it for any
    ``t ≥ 2``.  It *does* reach agreement in fault-free histories, which is
    exactly why the lower-bound proofs have to work from faulty ones.
    """

    name = "strawman-undersigning"
    authenticated = True
    phase_bound = "1"
    message_bound = "n - 1"
    signature_bound = "n - 1"

    def __init__(self, n: int, t: int, *, default: Value = DEFAULT_VALUE) -> None:
        super().__init__(n, t)
        self.default = default

    def num_phases(self) -> int:
        return 1

    def make_processor(self, pid: ProcessorId) -> Processor:
        if pid == self.transmitter:
            return _BroadcastingTransmitter()
        return _TrustingReceiver(self.default)


class EchoBroadcast(AgreementAlgorithm):
    """Two-phase strawman: broadcast plus one round of unverified echoes.

    Receivers echo the transmitter's signed value to everyone and decide by
    simple majority of echoes.  It exchanges plenty of *messages*
    (``Θ(n²)``) but every processor still only ever *verifies* the
    transmitter's signature — each pair exchanges chains whose only
    signature is the transmitter's plus the echoer's own, so the per-
    processor signature exchange stays small and Theorem 1's adversary can
    still split views whenever ``t ≥ 3`` (it must corrupt the transmitter
    and the... full analysis in ``tests/bounds``).  Included mainly as a
    second data point for the experiments: beating the signature bound is
    not about message volume.
    """

    name = "strawman-echo"
    authenticated = True
    phase_bound = "2"
    message_bound = "(n - 1) * (n - 1)"
    signature_bound = "unstated"

    def __init__(self, n: int, t: int, *, default: Value = DEFAULT_VALUE) -> None:
        super().__init__(n, t)
        self.default = default

    def num_phases(self) -> int:
        return 2

    def make_processor(self, pid: ProcessorId) -> Processor:
        if pid == self.transmitter:
            return _BroadcastingTransmitter()
        return _EchoReceiver(self.default)


class _EchoReceiver(Processor):
    """Echoes the transmitter's chain, decides by majority of echoes."""

    def __init__(self, default: Value) -> None:
        self.default = default
        self.direct: SignatureChain | None = None
        self.echo_values: list[Value] = []

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase == 2:
            for envelope in inbox:
                chain = envelope.payload
                if (
                    isinstance(chain, SignatureChain)
                    and len(chain) == 1
                    and chain.signers[0] == self.ctx.transmitter
                    and chain.verify(self.ctx.service)
                ):
                    self.direct = chain
            if self.direct is not None:
                echo = self.direct.extend(self.ctx.key, self.ctx.service)
                return [(q, echo) for q in self.ctx.others()]
        return []

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            chain = envelope.payload
            if (
                isinstance(chain, SignatureChain)
                and len(chain) == 2
                and chain.signers[0] == self.ctx.transmitter
                and chain.signers[1] == envelope.src
                and chain.verify(self.ctx.service)
            ):
                self.echo_values.append(chain.value)

    def decision(self) -> Value:
        values = list(self.echo_values)
        if self.direct is not None:
            values.append(self.direct.value)
        if not values:
            return self.default
        counts: dict[Value, int] = {}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
        best = max(counts.values())
        winners = sorted((v for v, c in counts.items() if c == best), key=repr)
        return winners[0] if len(winners) == 1 else self.default
