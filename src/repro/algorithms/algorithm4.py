"""Algorithm 4 of the paper: 3-phase grid exchange with ``O(N^1.5)`` messages.

``N = m²`` processors ``p(i, j)`` each hold a value and want (almost) all
correct processors to learn (almost) all correct values.  The obvious
solution costs ``N(N-1)`` messages; relaying through ``t + 1`` hubs costs
``Θ(Nt)``.  Algorithm 4 spends only ``3(m-1)m² = O(N^1.5)`` messages and
still guarantees (Lemma 2) that a set ``P`` of at least ``N - 2t`` correct
processors — those whose **row** contains fewer than ``m/2`` faulty
processors, the *non-isolated* set — succeed completely: for all
``p(i,j), p(l,k) ∈ P``, ``p(i,j)`` ends up holding ``M(l,k)`` signed by
``p(l,k)``.

* Phase 1 — ``p(i,j)`` signs its value and sends it along its **row**.
  ``M1(i,j,k)`` is the (format-checked) value received from ``p(i,k)``.
* Phase 2 — ``p(i,j)`` bundles ``[M1(i,j,1..m)]`` and sends it along its
  **column**.  ``M2(i,j,l)`` is the (format-checked) bundle received from
  ``p(l,j)`` — row ``l``'s values.
* Phase 3 — ``p(i,j)`` bundles ``[M2(i,j,1..m)]`` and sends it along its
  **row**; ``M3(i,j)`` is everything received.

A message without the correct format (wrong signer, unverifiable
signature, oversized bundle) is replaced by the empty string, exactly as
the paper specifies.

:class:`GridExchange` is the sans-runner component (Algorithm 5 embeds it
at varying phase offsets); :class:`Algorithm4` wraps it as a standalone
3-phase run for the Theorem 6 experiments.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.algorithms.base import AgreementAlgorithm, Processor
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Context
from repro.core.runner import RunResult
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain
from repro.network.topology import Grid


def _valid_signed_value(
    payload: object, expected_signer: ProcessorId, ctx: Context
) -> bool:
    """A correct phase-1 format: a value signed (once) by *expected_signer*."""
    return (
        isinstance(payload, SignatureChain)
        and len(payload) == 1
        and payload.signers[0] == expected_signer
        and payload.verify(ctx.service)
    )


def _valid_row_bundle(
    payload: object, row_members: Sequence[ProcessorId], ctx: Context
) -> tuple[SignatureChain, ...] | None:
    """A correct phase-2 format: up to ``m`` strings, each a value signed by
    a distinct member of *row_members*.  Returns the verified strings, or
    ``None`` if the format is wrong (treated as the empty string)."""
    if not isinstance(payload, tuple) or len(payload) > len(row_members):
        return None
    allowed = set(row_members)
    seen: set[ProcessorId] = set()
    for item in payload:
        if not isinstance(item, SignatureChain) or len(item) != 1:
            return None
        signer = item.signers[0]
        if signer not in allowed or signer in seen:
            return None
        if not item.verify(ctx.service):
            return None
        seen.add(signer)
    return payload


class GridExchange:
    """One processor's share of Algorithm 4, offset-free.

    Drive it with :meth:`outgoing` for steps 1–3 (step *k*'s inbox holds
    the deliveries of step *k − 1*) and :meth:`absorb_final` for the
    receive-only step 4.  Results accumulate in :attr:`gathered`, mapping
    each grid member to the set of values it verifiably signed (a set,
    because a faulty signer may sign several).
    """

    def __init__(self, ctx: Context, grid: Grid, my_value: Value) -> None:
        self.ctx = ctx
        self.grid = grid
        self.my_value = my_value
        #: every verified (signer → values) pair learned so far.
        self.gathered: dict[ProcessorId, set[Value]] = {}
        #: the signed chains behind :attr:`gathered`, keyed by signer then
        #: value — kept so gathered values can be *forwarded* with their
        #: proof of origin (Algorithm 5's proofs of work).
        self.chains: dict[ProcessorId, dict[Value, SignatureChain]] = {}
        self._row = grid.row_of(ctx.pid)
        self._column = grid.column_of(ctx.pid)
        #: M1, keyed by row member; our own entry is filled locally.
        self._m1: dict[ProcessorId, SignatureChain] = {}
        #: M2, keyed by row index ``l``; our own row's bundle filled locally.
        self._m2: dict[int, tuple[SignatureChain, ...]] = {}

    # ------------------------------------------------------------- the steps

    def outgoing(self, step: int, inbox: Sequence[Envelope]) -> list[Outgoing]:
        if step == 1:
            return self._step1()
        if step == 2:
            return self._step2(inbox)
        if step == 3:
            return self._step3(inbox)
        raise ValueError(f"GridExchange has steps 1..3, got {step}")

    def _step1(self) -> list[Outgoing]:
        chain = SignatureChain.initial(self.my_value, self.ctx.key, self.ctx.service)
        self._m1[self.ctx.pid] = chain
        self._note(chain)
        return [(q, chain) for q in self._row if q != self.ctx.pid]

    def _step2(self, inbox: Sequence[Envelope]) -> list[Outgoing]:
        for envelope in inbox:
            if envelope.src in self._row and _valid_signed_value(
                envelope.payload, envelope.src, self.ctx
            ):
                self._m1[envelope.src] = envelope.payload
                self._note(envelope.payload)
        bundle = tuple(self._m1[q] for q in self._row if q in self._m1)
        my_row_index, _ = self.grid.position(self.ctx.pid)
        self._m2[my_row_index] = bundle
        return [(q, bundle) for q in self._column if q != self.ctx.pid]

    def _step3(self, inbox: Sequence[Envelope]) -> list[Outgoing]:
        column_row_of = {q: self.grid.position(q)[0] for q in self._column}
        for envelope in inbox:
            row_index = column_row_of.get(envelope.src)
            if row_index is None or row_index in self._m2:
                continue
            row_members = [self.grid.at(row_index, c) for c in range(self.grid.m)]
            bundle = _valid_row_bundle(envelope.payload, row_members, self.ctx)
            if bundle is not None:
                self._m2[row_index] = bundle
                for chain in bundle:
                    self._note(chain)
        super_bundle = tuple(
            self._m2.get(l, ()) for l in range(self.grid.m)
        )
        return [(q, super_bundle) for q in self._row if q != self.ctx.pid]

    def absorb_final(self, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            if envelope.src not in self._row:
                continue
            payload = envelope.payload
            if not isinstance(payload, tuple) or len(payload) != self.grid.m:
                continue
            for row_index, entry in enumerate(payload):
                row_members = [
                    self.grid.at(row_index, c) for c in range(self.grid.m)
                ]
                bundle = _valid_row_bundle(entry, row_members, self.ctx)
                if bundle is not None:
                    for chain in bundle:
                        self._note(chain)

    # -------------------------------------------------------------- results

    def _note(self, chain: SignatureChain) -> None:
        signer = chain.signers[0]
        self.gathered.setdefault(signer, set()).add(chain.value)
        self.chains.setdefault(signer, {})[chain.value] = chain

    def knows_value_of(self, pid: ProcessorId) -> bool:
        """True iff some verified value signed by *pid* was gathered."""
        return pid in self.gathered


class Algorithm4Processor(Processor):
    """Standalone wrapper: runs the exchange in phases 1–3."""

    def __init__(self, grid: Grid, my_value: Value) -> None:
        self.grid = grid
        self.my_value = my_value
        self.exchange: GridExchange | None = None

    def on_bind(self) -> None:
        self.exchange = GridExchange(self.ctx, self.grid, self.my_value)

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        assert self.exchange is not None
        return self.exchange.outgoing(phase, inbox)

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        assert self.exchange is not None
        self.exchange.absorb_final(inbox)

    def decision(self) -> Value:
        """Mutual exchange has no agreement decision; report our own value."""
        return self.my_value


class Algorithm4(AgreementAlgorithm):
    """Theorem 6: ``N = m²`` processors, 3 phases, ``≤ 3(m−1)m²`` messages,
    and the non-isolated ``≥ N − 2t`` correct processors fully exchange.

    *values* assigns each processor the value it wants to distribute; the
    runner's ``input_value`` is unused (pass anything).
    """

    name = "algorithm-4"
    authenticated = True
    phase_bound = "3"
    #: ``3(m−1)m²``: each processor sends ``m − 1`` messages per phase.
    message_bound = "theorem6_message_upper_bound(m)"
    signature_bound = "unstated"

    def __init__(self, m: int, t: int, values: Mapping[ProcessorId, Value]) -> None:
        if m < 1:
            raise ConfigurationError(f"grid side must be positive, got m={m}")
        super().__init__(m * m, t)
        self.m = m
        self.values = dict(values)
        missing = [pid for pid in range(self.n) if pid not in self.values]
        if missing:
            raise ConfigurationError(f"no value assigned to processors {missing}")
        self.grid = Grid(tuple(range(self.n)))

    def num_phases(self) -> int:
        return 3

    def make_processor(self, pid: ProcessorId) -> Processor:
        return Algorithm4Processor(self.grid, self.values[pid])


def nonisolated_set(grid: Grid, faulty: frozenset[ProcessorId]) -> set[ProcessorId]:
    """Lemma 2's set ``P``: correct processors whose row has fewer than
    ``m/2`` faulty members."""
    result: set[ProcessorId] = set()
    for pid in grid.members:
        if pid in faulty:
            continue
        row_faulty = sum(1 for q in grid.row_of(pid) if q in faulty)
        if row_faulty < grid.m / 2:
            result.add(pid)
    return result


def check_lemma2(result: RunResult, algorithm: Algorithm4) -> tuple[set[ProcessorId], list[str]]:
    """Verify Lemma 2 on a finished Algorithm 4 run.

    Returns the non-isolated set ``P`` and a list of violations (empty when
    the lemma holds): ``|P| ≥ N − 2t`` and every member of ``P`` gathered
    the signed value of every other member of ``P``.
    """
    grid = algorithm.grid
    p_set = nonisolated_set(grid, result.faulty)
    violations: list[str] = []
    if len(p_set) < algorithm.n - 2 * len(result.faulty):
        violations.append(
            f"|P| = {len(p_set)} < N - 2·|faulty| = "
            f"{algorithm.n - 2 * len(result.faulty)}"
        )
    for receiver in sorted(p_set):
        exchange = result.processors[receiver].exchange  # type: ignore[attr-defined]
        for source in sorted(p_set):
            if not exchange.knows_value_of(source):
                violations.append(f"{receiver} missed the value of {source}")
            elif algorithm.values[source] not in exchange.gathered[source]:
                violations.append(f"{receiver} holds a wrong value for {source}")
    return p_set, violations
