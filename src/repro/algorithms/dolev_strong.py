"""Dolev–Strong authenticated broadcast — the paper's baseline [9].

The classic ``t + 1``-phase authenticated algorithm (Dolev & Strong,
*Authenticated algorithms for Byzantine Agreement*, SIAM J. Comput. 1983):

* Phase 1 — the transmitter signs its value and sends it to everyone.
* Phase ``k`` (``2 ≤ k ≤ t + 1``) — when a processor first *extracts* a
  value (receives a valid chain of ``k - 1`` distinct signatures beginning
  with the transmitter's), it appends its own signature and relays the chain
  to every processor that has not yet signed it.  A processor extracts at
  most two distinct values — two already prove the transmitter faulty.
* Decision — a processor that extracted exactly one value decides it;
  otherwise (zero or two values: the transmitter is faulty) it decides the
  default value.

Worst-case messages sent by correct processors: the transmitter sends
``n − 1``; every other correct processor relays at most 2 chains to at most
``n − 1`` targets — ``O(n²)`` in total.  The paper cites the optimised
``O(nt + t²)``-message variant of [9]; that variant is implemented
separately in :mod:`repro.algorithms.active_set`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algorithms.base import (
    DEFAULT_VALUE,
    AgreementAlgorithm,
    Processor,
    input_value_from,
)
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain


class DolevStrongProcessor(Processor):
    """One processor of the classic Dolev–Strong broadcast."""

    def __init__(self, t: int, default: Value = DEFAULT_VALUE) -> None:
        self.t = t
        self.default = default
        #: values extracted so far, in extraction order (at most 2 kept).
        self.extracted: list[Value] = []

    # ------------------------------------------------------------ extraction

    def _accept_chain(self, chain: object, phase: int) -> bool:
        """True iff *chain* is a valid phase-*phase* relay chain.

        Valid means: a :class:`SignatureChain` of exactly ``phase - 1``
        distinct verified signatures, the first of which is the
        transmitter's, none of which is ours.
        """
        if not isinstance(chain, SignatureChain):
            return False
        if len(chain) != phase - 1 or len(chain) < 1:
            return False
        if chain.signers[0] != self.ctx.transmitter:
            return False
        if self.ctx.pid in chain.signers:
            return False
        return chain.verify(self.ctx.service)

    def _extract(self, inbox: Sequence[Envelope], phase: int) -> list[SignatureChain]:
        """Record newly extracted values; return the chains that were new."""
        new_chains: list[SignatureChain] = []
        for envelope in inbox:
            chain = envelope.payload
            if not self._accept_chain(chain, phase):
                continue
            if chain.value in self.extracted or len(self.extracted) >= 2:
                continue
            self.extracted.append(chain.value)
            new_chains.append(chain)
        return new_chains

    # ----------------------------------------------------------------- phases

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if self.ctx.pid == self.ctx.transmitter:
            if phase == 1:
                value = input_value_from(inbox)
                self.extracted.append(value)
                chain = SignatureChain.initial(value, self.ctx.key, self.ctx.service)
                return [(q, chain) for q in self.ctx.others()]
            return []

        if phase == 1:
            return []
        outgoing: list[Outgoing] = []
        for chain in self._extract(inbox, phase):
            extended = chain.extend(self.ctx.key, self.ctx.service)
            signed = set(extended.signers)
            outgoing.extend(
                (q, extended) for q in self.ctx.others() if q not in signed
            )
        return outgoing

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        if self.ctx.pid != self.ctx.transmitter:
            self._extract(inbox, self.ctx.t + 2)

    def decision(self) -> Value | None:
        if len(self.extracted) == 1:
            return self.extracted[0]
        return self.default


class DolevStrong(AgreementAlgorithm):
    """Classic Dolev–Strong: ``t + 1`` phases, ``O(n²)`` messages."""

    name = "dolev-strong"
    authenticated = True
    phase_bound = "t + 1"
    #: transmitter: ``n − 1``; each other correct processor sends at most 2
    #: relays to at most ``n − 2`` non-signers each.
    message_bound = "(n - 1) + (n - 1) * 2 * (n - 2)"
    #: every relayed chain at phase ``k`` carries ``k ≤ t + 1`` signatures.
    signature_bound = "((n - 1) + (n - 1) * 2 * (n - 2)) * (t + 1)"

    def __init__(self, n: int, t: int, *, default: Value = DEFAULT_VALUE) -> None:
        super().__init__(n, t)
        if t > n - 2:
            raise ConfigurationError(
                f"Byzantine Agreement needs t < n - 1 (got n={n}, t={t})"
            )
        self.default = default

    def num_phases(self) -> int:
        return self.t + 1

    def make_processor(self, pid: ProcessorId) -> Processor:
        return DolevStrongProcessor(t=self.t, default=self.default)
