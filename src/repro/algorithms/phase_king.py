"""Phase King — a polynomial unauthenticated reference baseline.

**Not part of the paper** (Berman & Garay, 1989 — seven years later).  It
is included as a runnable *polynomial* unauthenticated comparator: the
paper cites [10] (Dolev–Fischer–Fowler–Lynch–Strong) as the
``O(nt + t³)``-message unauthenticated optimum, but [10]'s algorithm is
notoriously intricate; Phase King gives the comparison tables a simple
polynomial unauthenticated point (``O(t · n²)`` messages, ``n > 4t``)
between the exponential OM(t) and the authenticated algorithms.  All
reports label it as a post-paper reference.

The simple two-round variant, ``t + 1`` iterations, king of iteration
``k`` = processor ``k``:

* round A — everyone broadcasts its preference; each processor computes
  the majority value ``maj`` among what it received (own included) and
  the multiplicity ``cnt``;
* round B — the king broadcasts its ``maj``; a processor keeps its own
  ``maj`` if ``cnt ≥ n − t``, otherwise adopts the king's value.

With ``n > 4t``: if all correct processors already prefer ``v`` they all
see ``cnt ≥ n − t`` and keep it (persistence); and in an iteration with a
correct king every correct processor ends up with the same preference —
among ``t + 1`` kings at least one is correct.

An initial phase carries the transmitter's private value (the paper's BA
problem statement): every processor's starting preference is what the
transmitter broadcast, or the default if it stayed silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.algorithms.base import (
    DEFAULT_VALUE,
    AgreementAlgorithm,
    Processor,
    input_value_from,
)
from repro.core.batch import (
    BatchOutcome,
    kernel_agreement_ok,
    kernel_value_table,
    register_batch_kernel,
)
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing, UninternableError
from repro.core.types import ProcessorId, Value


@dataclass(frozen=True, slots=True)
class Preference:
    """Round A broadcast: the sender's current preference."""

    value: Value


@dataclass(frozen=True, slots=True)
class KingWord:
    """Round B broadcast: the king's majority value."""

    value: Value


class PhaseKingProcessor(Processor):
    """One Phase King participant.

    Phase schedule (runner semantics: phase-``p`` sends arrive at
    ``on_phase(p + 1)``):

    * phase 1 — the transmitter broadcasts its private value;
    * phase ``2 + 2k`` (round A of iteration ``k``) — absorb either the
      transmitter's value (``k = 0``) or the previous king's word, then
      broadcast the preference;
    * phase ``3 + 2k`` (round B) — tally preferences into ``(maj, cnt)``;
      the king broadcasts its ``maj``;
    * ``on_final`` — absorb the last king's word; decide the preference.
    """

    def __init__(self, default: Value = DEFAULT_VALUE) -> None:
        self.default = default
        self.preference: Value = default
        self._maj: Value = default
        self._cnt: int = 0

    # --------------------------------------------------------------- helpers

    def _absorb_king(self, inbox: Sequence[Envelope], king: ProcessorId) -> None:
        """Finish the previous iteration: keep or adopt the king's word."""
        king_word = next(
            (
                e.payload.value
                for e in inbox
                if e.src == king and isinstance(e.payload, KingWord)
            ),
            None,
        )
        if self._cnt >= self.ctx.n - self.ctx.t:
            self.preference = self._maj
        elif king_word is not None:
            self.preference = king_word

    def _tally_preferences(self, inbox: Sequence[Envelope]) -> None:
        counts: dict[Value, int] = {self.preference: 1}  # own vote
        seen: set[ProcessorId] = set()
        for envelope in inbox:
            payload = envelope.payload
            if not isinstance(payload, Preference) or envelope.src in seen:
                continue
            seen.add(envelope.src)
            counts[payload.value] = counts.get(payload.value, 0) + 1
        best = max(counts.values())
        winners = sorted((v for v, c in counts.items() if c == best), key=repr)
        self._maj = winners[0]
        self._cnt = best

    def _broadcast(self, payload: object) -> list[Outgoing]:
        return [(q, payload) for q in self.ctx.others()]

    # ----------------------------------------------------------------- phases

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase == 1:
            if self.ctx.pid == self.ctx.transmitter:
                self.preference = input_value_from(inbox)
                return self._broadcast(Preference(self.preference))
            return []

        k, round_offset = divmod(phase - 2, 2)
        if round_offset == 0:  # round A of iteration k
            if k == 0:
                from_transmitter = next(
                    (
                        e.payload.value
                        for e in inbox
                        if e.src == self.ctx.transmitter
                        and isinstance(e.payload, Preference)
                    ),
                    None,
                )
                if self.ctx.pid != self.ctx.transmitter:
                    self.preference = (
                        from_transmitter
                        if from_transmitter is not None
                        else self.default
                    )
            else:
                self._absorb_king(inbox, king=k - 1)
            return self._broadcast(Preference(self.preference))

        # round B of iteration k.
        self._tally_preferences(inbox)
        if self.ctx.pid == k:
            return self._broadcast(KingWord(self._maj))
        return []

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        self._absorb_king(inbox, king=self.ctx.t)

    def decision(self) -> Value:
        return self.preference


class PhaseKing(AgreementAlgorithm):
    """Post-paper reference: ``n > 4t``, ``2t + 3`` phases, ``O(tn²)``
    messages, no signatures."""

    name = "phase-king"
    authenticated = False
    phase_bound = "2*t + 3"
    #: transmitter broadcast + per iteration one all-to-all round and one
    #: king broadcast.
    message_bound = "(n - 1) + (t + 1) * (n * (n - 1) + (n - 1))"

    def __init__(self, n: int, t: int, *, default: Value = DEFAULT_VALUE) -> None:
        super().__init__(n, t)
        if n <= 4 * t:
            raise ConfigurationError(
                f"Phase King requires n > 4t (got n={n}, t={t})"
            )
        self.default = default

    def num_phases(self) -> int:
        return 2 * self.t + 3

    def make_processor(self, pid: ProcessorId) -> Processor:
        return PhaseKingProcessor(default=self.default)


@register_batch_kernel("phase-king")
def _phase_king_batch_kernel(
    algorithm: AgreementAlgorithm, values: Sequence[Value]
) -> list[BatchOutcome] | None:
    """Vectorised fault-free Phase King over ``(runs, processors)`` arrays.

    Replays the exact per-iteration dynamics — majority tally, the
    ``cnt ≥ n − t`` threshold test, king absorption — as numpy reductions
    over a ``(runs, n)`` preference array instead of per-run Counters.
    The value table is sorted by ``repr`` so ``argmax``'s first-maximum
    tie-break coincides with the scalar tally's repr-sorted winner rule.
    Declines (``None``) on subclasses, missing numpy, uninternable values,
    or a ``None`` input (whose scalar semantics involve the silent-
    transmitter default path).
    """
    if type(algorithm) is not PhaseKing:
        return None
    if any(value is None for value in values):
        return None
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is part of the toolchain
        return None
    try:
        table, indices, _ = kernel_value_table(values, algorithm.default)
    except UninternableError:
        return None

    n, t = algorithm.n, algorithm.t
    runs, width = len(values), len(table)
    # Every processor starts from the transmitter's broadcast value.
    prefs = np.broadcast_to(
        np.asarray(indices, dtype=np.int64)[:, None], (runs, n)
    ).copy()
    rows = np.arange(width, dtype=np.int64)
    for _iteration in range(t + 1):
        # Round A+B of one iteration: every processor tallies all n
        # preferences (own vote included) ...
        counts = (prefs[:, :, None] == rows[None, None, :]).sum(axis=1)
        best = counts.max(axis=1)
        maj = counts.argmax(axis=1)  # first max == repr-smallest winner
        # ... keeps its majority iff it saw ≥ n − t copies, else adopts the
        # king's word (the king tallies the same inbox, so its word is maj).
        keep = best >= n - t
        prefs = np.where(keep[:, None], maj[:, None], maj[:, None])
        prefs = np.broadcast_to(prefs, (runs, n)).copy()

    # Fault-free message schedule: the transmitter's broadcast, then per
    # iteration one all-to-all round A and one king broadcast in round B.
    per_phase: list[tuple[int, int]] = [(1, n - 1)]
    for k in range(t + 1):
        per_phase.append((2 + 2 * k, n * (n - 1)))
        per_phase.append((3 + 2 * k, n - 1))
    per_phase = [(phase, count) for phase, count in per_phase if count > 0]
    total = sum(count for _, count in per_phase)
    phases_used = max((phase for phase, _ in per_phase), default=0)

    outcomes: list[BatchOutcome] = []
    for row in range(runs):
        decisions = {pid: table[int(prefs[row, pid])] for pid in range(n)}
        outcomes.append(
            BatchOutcome(
                decisions=tuple(sorted(decisions.items())),
                messages_by_correct=total,
                messages_by_faulty=0,
                signatures_by_correct=0,
                signatures_by_faulty=0,
                phases_used=phases_used,
                phases_configured=algorithm.num_phases(),
                messages_per_phase=tuple(per_phase),
                signatures_per_phase=tuple(
                    (phase, 0) for phase, _ in per_phase
                ),
                agreement_ok=kernel_agreement_ok(
                    algorithm, values[row], decisions
                ),
            )
        )
    return outcomes
