"""Algorithm 1 of the paper: BA for ``n = 2t + 1`` in ``t + 2`` phases.

Setup (Section 5): transmitter ``q``; the ``2t`` remaining processors are
split into sets ``A`` and ``B`` of size ``t``; ``G`` is the complete
bipartite graph on ``(A, B)`` plus ``q`` joined to every node.

A *correct 1-message* received by ``p`` at phase ``k`` consists of value 1
with signatures appended such that the sequence of signers, together with
``p``, forms a **simple path of length k from q to p in G**.

* Phase 1 — the transmitter signs and sends its value to everyone.
* Phases 2 .. t+2 — when a processor in ``A`` (resp. ``B``) gets a correct
  1-message *for the first time*, it signs it and sends it to everybody in
  ``B`` (resp. ``A``).
* Decision — a processor in ``A`` or ``B`` decides 1 iff it received a
  correct 1-message by phase ``t + 2``; otherwise it decides 0.  (The
  transmitter decides its own value.)

Theorem 3: this reaches Byzantine Agreement with at most ``2t² + 2t``
messages sent by correct processors.

Timing note: "received at phase k" in the paper means the message is an
edge of phase ``k``'s graph; in the runner such a message is handed to the
receiver's ``on_phase(k + 1)`` (or ``on_final`` when ``k`` is the last
phase), so a processor that first sees a correct 1-message of phase ``k``
relays it during phase ``k + 1`` — producing a chain of length ``k + 1``,
exactly a correct 1-message of phase ``k + 1``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algorithms.base import AgreementAlgorithm, Processor, input_value_from
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain
from repro.network.topology import BipartiteRelayGraph

#: The value whose propagation Algorithm 1 certifies with signature paths.
ONE: Value = 1
#: The fallback value decided when no correct 1-message ever arrives.
ZERO: Value = 0


class Algorithm1Processor(Processor):
    """A non-transmitter processor of Algorithm 1 (member of ``A`` or ``B``)."""

    def __init__(self, graph: BipartiteRelayGraph) -> None:
        self.graph = graph
        #: the first accepted correct 1-message (None until one arrives).
        self.accepted: SignatureChain | None = None
        #: whether the relay duty has been performed.
        self.relayed = False

    # ------------------------------------------------------------ validation

    def is_correct_1_message(self, envelope: Envelope) -> bool:
        """Check the paper's correct-1-message condition for *envelope*.

        The message must be a verified signature chain on value 1 whose
        signer sequence, with this processor appended, is a simple path of
        length ``envelope.phase`` from the transmitter in ``G``.
        """
        chain = envelope.payload
        if not isinstance(chain, SignatureChain) or chain.value != ONE:
            return False
        if len(chain) != envelope.phase:
            return False
        path = (*chain.signers, self.ctx.pid)
        if not self.graph.is_simple_path_from_transmitter(path):
            return False
        return chain.verify(self.ctx.service)

    def _first_acceptable(self, inbox: Sequence[Envelope]) -> SignatureChain | None:
        for envelope in inbox:
            if self.is_correct_1_message(envelope):
                return envelope.payload
        return None

    # ----------------------------------------------------------------- phases

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if self.accepted is None:
            self.accepted = self._first_acceptable(inbox)
            if self.accepted is not None and not self.relayed and phase <= self.ctx.t + 2:
                self.relayed = True
                extended = self.accepted.extend(self.ctx.key, self.ctx.service)
                return [(q, extended) for q in self.graph.opposite_side(self.ctx.pid)]
        return []

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        if self.accepted is None:
            self.accepted = self._first_acceptable(inbox)

    def decision(self) -> Value:
        return ONE if self.accepted is not None else ZERO


class Algorithm1Transmitter(Processor):
    """The transmitter: signs and sends its private value at phase 1."""

    def __init__(self) -> None:
        self.value: Value | None = None

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase != 1:
            return []
        self.value = input_value_from(inbox)
        chain = SignatureChain.initial(self.value, self.ctx.key, self.ctx.service)
        return [(q, chain) for q in self.ctx.others()]

    def decision(self) -> Value | None:
        return self.value


class Algorithm1(AgreementAlgorithm):
    """Theorem 3: ``t + 2`` phases, at most ``2t² + 2t`` messages."""

    name = "algorithm-1"
    authenticated = True
    value_domain = frozenset({0, 1})
    phase_bound = "theorem3_phases(t)"
    message_bound = "theorem3_message_upper_bound(t)"
    #: the transmitter sends ``2t`` one-signature chains; each of the ``2t``
    #: others relays once to ``t`` targets, at most ``t + 2`` signatures per
    #: relayed chain.
    signature_bound = "2*t + 2*t*t*(t + 2)"

    def __init__(self, n: int, t: int) -> None:
        super().__init__(n, t)
        if n != 2 * t + 1 or t < 1:
            raise ConfigurationError(
                f"Algorithm 1 is defined for n = 2t + 1 with t >= 1 "
                f"(got n={n}, t={t})"
            )
        self.graph = BipartiteRelayGraph(t)

    def num_phases(self) -> int:
        return self.t + 2

    def make_processor(self, pid: ProcessorId) -> Processor:
        if pid == self.transmitter:
            return Algorithm1Transmitter()
        return Algorithm1Processor(self.graph)
