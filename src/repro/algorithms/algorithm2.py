"""Algorithm 2 of the paper: Algorithm 1 plus a transferable proof.

After running Algorithm 1 (phases ``1 .. t+2``) the ``2t + 1`` processors
``p(1), ..., p(2t+1)`` (here: ``p(j)`` is processor ``j - 1``) spend
``2t + 1`` further phases circulating *increasing messages* so that, by
phase ``3t + 3``, **every correct processor possesses the common value with
at least t signatures of other processors appended** — a one-message proof
for the outside world.  No processor (faulty ones included) can assemble
such a proof for any other value, because correct processors only ever sign
their committed value and only ``t < t + 1`` signers can be faulty.

A message received by ``p(j)`` after phase ``t + 2`` is *increasing* if it
consists of the value ``p(j)`` committed to in phase ``t + 2`` together
with signatures of processors with labels **less than j in increasing
order**.

Phase ``t + 2 + j`` (``1 ≤ j ≤ 2t + 1``): ``p(j)`` takes ``m(j)``, an
increasing message it received with the maximum number of signatures (just
the bare committed value if it received none), signs it, and

* if ``m(j)`` already carried at least ``t`` signatures — sends it to every
  other processor;
* otherwise — sends it only to the processors with labels ``j+1 .. j+t+1``
  (labels beyond ``2t + 1`` simply do not exist; see DESIGN.md §5.1).

Theorem 4: ``3t + 3`` phases and at most ``5t² + 5t`` messages.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algorithms.algorithm1 import (
    Algorithm1,
    Algorithm1Processor,
    Algorithm1Transmitter,
)
from repro.core.message import Envelope, Outgoing
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain


class IncreasingMessageMixin:
    """The post-phase-``t+2`` behaviour shared by all Algorithm 2 roles.

    Mixed into both the transmitter and the ``A``/``B`` relay processors;
    hosts expose their Algorithm 1 commitment via :meth:`committed_value`.
    """

    def _init_increasing(self) -> None:
        #: increasing messages addressed to us that we may relay.
        self._relay_candidates: list[SignatureChain] = []
        #: the best proof-of-agreement chain seen so far (any valid chain on
        #: our committed value, regardless of our own label).
        self.best_proof: SignatureChain | None = None

    # Hosts override.
    def committed_value(self) -> Value | None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def label(self) -> int:
        """The paper's 1-based label ``j`` of this processor."""
        return self.ctx.pid + 1

    # ------------------------------------------------------------ collection

    def _proof_strength(self, chain: SignatureChain) -> int:
        """Signatures of processors other than ourselves."""
        return sum(1 for s in chain.signers if s != self.ctx.pid)

    def _collect_increasing(self, inbox: Sequence[Envelope]) -> None:
        committed = self.committed_value()
        for envelope in inbox:
            chain = envelope.payload
            if not isinstance(chain, SignatureChain) or len(chain) < 1:
                continue
            if chain.value != committed or not chain.verify(self.ctx.service):
                continue
            signers = chain.signers
            increasing = all(a < b for a, b in zip(signers, signers[1:]))
            if not increasing:
                continue
            self._note_proof(chain)
            if all(s + 1 < self.label for s in signers):
                self._relay_candidates.append(chain)

    def _note_proof(self, chain: SignatureChain) -> None:
        if self.best_proof is None or self._proof_strength(chain) > self._proof_strength(
            self.best_proof
        ):
            self.best_proof = chain

    def has_agreement_proof(self) -> bool:
        """Theorem 4's postcondition: the common value with at least ``t``
        signatures of *other* processors appended."""
        return (
            self.best_proof is not None
            and self._proof_strength(self.best_proof) >= self.ctx.t
        )

    # -------------------------------------------------------------- emission

    def _emit_increasing(self) -> list[Outgoing]:
        """The sends of phase ``t + 2 + j`` (our own label's phase)."""
        committed = self.committed_value()
        best = max(self._relay_candidates, key=len, default=SignatureChain(committed))
        carried = len(best)
        signed = best.extend(self.ctx.key, self.ctx.service)
        self._note_proof(signed)
        if carried >= self.ctx.t:
            targets = self.ctx.others()
        else:
            targets = [
                q
                for q in range(self.ctx.pid + 1, self.ctx.pid + self.ctx.t + 2)
                if q < self.ctx.n
            ]
        return [(q, signed) for q in targets]

    def _increasing_phase(
        self, phase: int, inbox: Sequence[Envelope]
    ) -> list[Outgoing]:
        """Dispatch for every phase after ``t + 2``."""
        self._collect_increasing(inbox)
        if phase == self.ctx.t + 2 + self.label:
            return self._emit_increasing()
        return []


class Algorithm2Processor(IncreasingMessageMixin, Algorithm1Processor):
    """An ``A``/``B`` processor: Algorithm 1, then increasing messages."""

    def on_bind(self) -> None:
        self._init_increasing()

    def committed_value(self) -> Value:
        return Algorithm1Processor.decision(self)

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase <= self.ctx.t + 2:
            return Algorithm1Processor.on_phase(self, phase, inbox)
        if phase == self.ctx.t + 3:
            # the last Algorithm 1 messages (sent at phase t + 2) arrive now.
            Algorithm1Processor.on_final(self, inbox)
        return self._increasing_phase(phase, inbox)

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        self._collect_increasing(inbox)

    def decision(self) -> Value:
        return self.committed_value()


class Algorithm2Transmitter(IncreasingMessageMixin, Algorithm1Transmitter):
    """The transmitter ``p(1)``: Algorithm 1's phase 1, then label-1 duty."""

    def on_bind(self) -> None:
        self._init_increasing()

    def committed_value(self) -> Value | None:
        return self.value

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase <= self.ctx.t + 2:
            return Algorithm1Transmitter.on_phase(self, phase, inbox)
        return self._increasing_phase(phase, inbox)

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        self._collect_increasing(inbox)


class Algorithm2(Algorithm1):
    """Theorem 4: ``3t + 3`` phases, at most ``5t² + 5t`` messages, and a
    transferable one-message proof of the agreed value at every correct
    processor."""

    name = "algorithm-2"
    authenticated = True
    phase_bound = "theorem4_phases(t)"
    #: ``5t² + 5t``: Algorithm 1's ``2t² + 2t`` plus ``t(t+1)`` from labels
    #: ``1..t`` and ``(t+1)·2t`` from the remaining labels.
    message_bound = "theorem4_message_upper_bound(t)"
    #: generous: every correct message is a signature chain no longer than
    #: the phase in which it is sent (the paper bounds only messages here).
    signature_bound = "theorem4_message_upper_bound(t) * theorem4_phases(t)"

    def num_phases(self) -> int:
        return 3 * self.t + 3

    def make_processor(self, pid: ProcessorId) -> "Algorithm2Processor | Algorithm2Transmitter":
        if pid == self.transmitter:
            return Algorithm2Transmitter()
        return Algorithm2Processor(self.graph)
