"""Shared pieces for the concrete agreement algorithms.

Every algorithm module defines:

* one or more payload dataclasses (frozen, so they canonicalise);
* a :class:`~repro.core.protocol.Processor` subclass per processor role;
* an :class:`~repro.core.protocol.AgreementAlgorithm` subclass exposing the
  paper's phase and message bounds.

The registry in :mod:`repro.algorithms.registry` lists them all.
"""

from __future__ import annotations

from typing import Final

from repro.core.message import Envelope
from repro.core.protocol import AgreementAlgorithm, Context, Processor
from repro.core.types import Value

__all__ = [
    "AgreementAlgorithm",
    "Context",
    "Processor",
    "DEFAULT_VALUE",
    "input_value_from",
]

#: The value correct processors fall back to when the transmitter is exposed
#: as faulty.  The paper's binary proofs use 0; any fixed element of V works.
DEFAULT_VALUE: Final[Value] = 0


def input_value_from(inbox: tuple[Envelope, ...] | list[Envelope]) -> Value | None:
    """Extract the transmitter's private value from a phase-1 inbox.

    Returns the label of the phase-0 inedge, or ``None`` if the inbox does
    not contain one (which for the transmitter's phase-1 inbox would mean a
    runner bug, but adversarial simulations may filter it away).
    """
    for envelope in inbox:
        if envelope.is_input_edge():
            return envelope.payload
    return None
