"""Algorithm 2 plus one informing phase — the paper's small-n remedy.

Section 5 notes that when ``n`` is smaller than ``α`` (so Algorithm 5's
grid machinery cannot even be set up), *"one can extend the first
Algorithm by 1 phase and (t+1)(n − 2t − 1) = O(t²) messages and still
achieve an O(n + t²) upper bound"*.

This module implements that extension in its robust form: the first
``2t + 1`` processors run Algorithm 2 (so each ends up holding a
transferable proof — the common value with at least ``t + 1`` signatures);
in one extra phase the first ``t + 1`` of them send that proof to every
remaining processor, who adopts the value of the first proof that
verifies.  At least one of the ``t + 1`` senders is correct, and no proof
can exist for a wrong value (Theorem 4), so every correct processor
decides the common value.

Cost: Algorithm 2's ``5t² + 5t`` plus ``(t + 1)(n − 2t − 1)`` messages in
``3t + 4`` phases — ``O(n·t + t²)`` in general, and ``O(n + t²)`` whenever
``n = O(t²)``, which is exactly the ``n < α ≤ (√(6t) + 1)²`` regime the
paper aims it at.  (Algorithm 5's spread phase, phase ``3t + 4``, is this
same construction.)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algorithms.algorithm2 import (
    Algorithm2,
    Algorithm2Processor,
    Algorithm2Transmitter,
)
from repro.algorithms.base import AgreementAlgorithm, Processor
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Context
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain


def is_proof_message(payload: object, t: int, core: int, ctx: Context) -> bool:
    """A valid informing message: a verified chain with at least ``t + 1``
    distinct signatures of core processors."""
    if not isinstance(payload, SignatureChain) or not payload.verify(ctx.service):
        return False
    core_signers = {s for s in payload.signers if 0 <= s < core}
    return len(core_signers) >= t + 1


class InformedCoreProcessor(Processor):
    """A core processor: Algorithm 2 plus (for the first t+1) informing."""

    def __init__(
        self,
        inner: Algorithm2Processor | Algorithm2Transmitter,
        passive: Sequence[ProcessorId],
    ) -> None:
        self.inner = inner
        self.passive = tuple(passive)

    def on_bind(self) -> None:
        core_n = 2 * self.ctx.t + 1
        self.inner.bind(
            Context(
                pid=self.ctx.pid,
                n=core_n,
                t=self.ctx.t,
                transmitter=self.ctx.transmitter,
                key=self.ctx.key,
                service=self.ctx.service,
            )
        )

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        t = self.ctx.t
        if phase <= 3 * t + 3:
            return self.inner.on_phase(phase, inbox)
        # phase 3t + 4: the informing phase.
        self.inner.on_final(inbox)
        if self.ctx.pid >= t + 1:
            return []
        proof = self.inner.best_proof
        if proof is None:
            return []
        if not proof.has_signed(self.ctx.pid):
            proof = proof.extend(self.ctx.key, self.ctx.service)
        return [(q, proof) for q in self.passive]

    def decision(self) -> Value | None:
        return self.inner.decision()


class InformedPassiveProcessor(Processor):
    """A passive processor: adopts the first verifiable proof it receives."""

    def __init__(self, core: int) -> None:
        self.core = core
        self.adopted: SignatureChain | None = None

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        self._absorb(inbox)
        return []

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        self._absorb(inbox)

    def _absorb(self, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            if self.adopted is not None:
                return
            if is_proof_message(envelope.payload, self.ctx.t, self.core, self.ctx):
                self.adopted = envelope.payload

    def decision(self) -> Value | None:
        return self.adopted.value if self.adopted is not None else None


class InformedAlgorithm2(AgreementAlgorithm):
    """Algorithm 2 + one informing phase: ``3t + 4`` phases,
    ``5t² + 5t + (t+1)(n − 2t − 1)`` messages, any ``n ≥ 2t + 1``."""

    name = "informed-algorithm-2"
    authenticated = True
    value_domain = frozenset({0, 1})
    phase_bound = "3*t + 4"
    #: Theorem 4's bound plus the informing fan-out.
    message_bound = "theorem4_message_upper_bound(t) + (t + 1) * (n - 2*t - 1)"
    signature_bound = "unstated"

    def __init__(self, n: int, t: int) -> None:
        super().__init__(n, t)
        if t < 1 or n < 2 * t + 1:
            raise ConfigurationError(
                f"needs t >= 1 and n >= 2t + 1 (got n={n}, t={t})"
            )
        self._core_algorithm = Algorithm2(2 * t + 1, t)
        self.core = 2 * t + 1

    def num_phases(self) -> int:
        return 3 * self.t + 4

    def make_processor(self, pid: ProcessorId) -> Processor:
        if pid < self.core:
            inner = self._core_algorithm.make_processor(pid)
            return InformedCoreProcessor(inner, tuple(range(self.core, self.n)))
        return InformedPassiveProcessor(self.core)
