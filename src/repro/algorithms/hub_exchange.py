"""The two-phase hub-relay exchange of Section 6.

Before presenting Algorithm 4, the paper describes the straightforward
solution to the mutual-exchange problem:

    *"Select t + 1 processors; they will play the role of relay
    processors.  At phase 1 each processor signs and sends its value to
    every relay processor.  A relay processor combines all the incoming
    messages and its own value to one long message and sends it to every
    nonrelay processor at phase 2."*

Cost: ``(N − 1)(t + 1) + (N − t − 1)(t + 1) = Θ(Nt)`` messages — and the
paper notes ``Ω(Nt)`` is also a lower bound *"in case each correct
processor is required to receive the value of every other correct
processor"*.  Algorithm 4 undercuts it to ``O(N^{1.5})`` by weakening the
guarantee to the ``N − 2t`` non-isolated processors; this module exists so
that comparison (experiment E8) is measured rather than computed.

Guarantee here is the strong one: with at least one correct relay (there
are ``t + 1``), every correct processor ends up holding the verified
signed value of **every** correct processor.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.algorithms.base import AgreementAlgorithm, Processor
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.runner import RunResult
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain


class HubProcessor(Processor):
    """One participant; ids ``0 .. t`` double as relays."""

    def __init__(self, my_value: Value, relays: frozenset[ProcessorId]) -> None:
        self.my_value = my_value
        self.relays = relays
        #: verified values gathered, by signer.
        self.gathered: dict[ProcessorId, set[Value]] = {}
        self._received_chains: dict[ProcessorId, SignatureChain] = {}

    @property
    def is_relay(self) -> bool:
        return self.ctx.pid in self.relays

    def _note(self, chain: SignatureChain) -> None:
        self.gathered.setdefault(chain.signers[0], set()).add(chain.value)

    def _absorb_signed_values(self, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            chain = envelope.payload
            if (
                isinstance(chain, SignatureChain)
                and len(chain) == 1
                and chain.signers[0] == envelope.src
                and chain.verify(self.ctx.service)
            ):
                self._received_chains[envelope.src] = chain
                self._note(chain)

    def _absorb_bundles(self, inbox: Sequence[Envelope]) -> None:
        for envelope in inbox:
            if envelope.src not in self.relays:
                continue
            bundle = envelope.payload
            if not isinstance(bundle, tuple):
                continue
            for chain in bundle:
                if (
                    isinstance(chain, SignatureChain)
                    and len(chain) == 1
                    and chain.verify(self.ctx.service)
                ):
                    self._note(chain)

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if phase == 1:
            chain = SignatureChain.initial(self.my_value, self.ctx.key, self.ctx.service)
            self._received_chains[self.ctx.pid] = chain
            self._note(chain)
            return [(relay, chain) for relay in sorted(self.relays) if relay != self.ctx.pid]
        if phase == 2 and self.is_relay:
            self._absorb_signed_values(inbox)
            bundle = tuple(
                self._received_chains[pid] for pid in sorted(self._received_chains)
            )
            return [
                (q, bundle)
                for q in range(self.ctx.n)
                if q not in self.relays and q != self.ctx.pid
            ]
        return []

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        if self.is_relay:
            # relays already hold everything from phase 1... except other
            # relays' bundles never reach them; they absorb direct values.
            self._absorb_signed_values(inbox)
        else:
            self._absorb_bundles(inbox)

    def knows_value_of(self, pid: ProcessorId) -> bool:
        return pid in self.gathered

    def decision(self) -> Value:
        return self.my_value


class HubExchange(AgreementAlgorithm):
    """Section 6's straw solution: 2 phases, ``Θ(Nt)`` messages, but the
    strong every-correct-learns-every-correct guarantee."""

    name = "hub-exchange"
    authenticated = True
    phase_bound = "2"
    #: the paper's ``(N − 1)(t + 1) + (N − t − 1)(t + 1)``.
    message_bound = "(n - 1) * (t + 1) + (n - t - 1) * (t + 1)"
    signature_bound = "unstated"

    def __init__(self, n: int, t: int, values: Mapping[ProcessorId, Value]) -> None:
        super().__init__(n, t)
        if n < t + 2:
            raise ConfigurationError(
                f"hub exchange needs n >= t + 2 (got n={n}, t={t})"
            )
        self.values = dict(values)
        missing = [pid for pid in range(n) if pid not in self.values]
        if missing:
            raise ConfigurationError(f"no value assigned to processors {missing}")
        self.relays = frozenset(range(t + 1))

    def num_phases(self) -> int:
        return 2

    def make_processor(self, pid: ProcessorId) -> Processor:
        return HubProcessor(self.values[pid], self.relays)


def check_full_exchange(
    result: RunResult, algorithm: HubExchange
) -> list[str]:
    """The strong postcondition: every correct processor gathered the true
    signed value of every correct processor.  Returns violations."""
    violations: list[str] = []
    # relays only guarantee delivery to non-relays plus themselves; a
    # correct relay knows all, a non-relay learns via any correct relay.
    for receiver in sorted(result.correct):
        processor = result.processors[receiver]
        for source in sorted(result.correct):
            if source in algorithm.relays and receiver in algorithm.relays:
                # relays do not bundle to each other; they heard sources
                # directly at phase 1 (sources send to every relay).
                pass
            if not processor.knows_value_of(source):
                violations.append(f"{receiver} missed the value of {source}")
            elif algorithm.values[source] not in processor.gathered[source]:
                violations.append(f"{receiver} holds a wrong value for {source}")
    return violations
