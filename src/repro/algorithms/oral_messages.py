"""Oral Messages OM(t) — the unauthenticated baseline (Lamport–Shostak–Pease [14]).

The classic unauthenticated algorithm, implemented in its iterative
*exponential information gathering* (EIG) form.  It tolerates ``t`` faults
only when ``n > 3t``, and its worst-case message count grows like
``O(n^t)`` — which is exactly why it belongs in the comparison tables: the
paper's Corollary 1 lower-bounds unauthenticated algorithms at
``n(t+1)/4`` messages, and OM(t) overshoots that bound massively, while the
``O(nt + t³)`` algorithm of [10] (cited as the best unauthenticated result)
comes within a constant of it for ``n > t²``.

EIG structure: values are gathered along *paths* — sequences of distinct
processor ids beginning with the transmitter.  In phase 1 the transmitter
sends its value (path ``(0,)``) to everyone.  In phase ``k`` every
processor relays, for every length-``k−1`` path ``σ`` it holds a value for
and does not itself appear in, the claim "``σ`` said ``v``" — the receiver
stores it under path ``σ·p``.  After ``t + 1`` phases each processor
resolves the tree bottom-up by recursive majority (default on ties) and
decides the root's resolved value.

Every relayed claim is its own message (one ``(path, value)`` pair per
envelope): this matches the message granularity of [14] and makes the
exponential blow-up visible in the metrics.  No signatures are used —
receivers trust only the network-stamped immediate sender, so a faulty
processor can lie arbitrarily about what others said, which is what the
recursive majority defends against.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Iterable, Sequence

from repro.algorithms.base import (
    DEFAULT_VALUE,
    AgreementAlgorithm,
    Processor,
    input_value_from,
)
from repro.core.batch import (
    BatchOutcome,
    kernel_agreement_ok,
    kernel_value_table,
    register_batch_kernel,
)
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing, UninternableError
from repro.core.types import ProcessorId, Value


@dataclass(frozen=True, slots=True)
class Relay:
    """The claim "the processors along *path* relayed *value*".

    ``path`` is the EIG node: distinct processor ids, starting with the
    transmitter, ending with the processor that (supposedly) last relayed
    the value.  The receiver only trusts the final hop — the network stamps
    the true sender, which must equal ``path[-1]``.
    """

    path: tuple[ProcessorId, ...]
    value: Value


class OralMessagesProcessor(Processor):
    """One EIG participant."""

    def __init__(self, default: Value = DEFAULT_VALUE) -> None:
        self.default = default
        #: the EIG tree: path -> reported value.
        self.tree: dict[tuple[ProcessorId, ...], Value] = {}

    # ------------------------------------------------------------- reception

    def _store(self, envelope: Envelope, expected_length: int) -> None:
        relay = envelope.payload
        if not isinstance(relay, Relay):
            return
        path = relay.path
        if len(path) != expected_length or len(set(path)) != len(path):
            return
        if not path or path[0] != self.ctx.transmitter:
            return
        if path[-1] != envelope.src:
            return  # a processor cannot claim somebody else relayed to us
        if path not in self.tree:
            self.tree[path] = relay.value

    # ----------------------------------------------------------------- phases

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        if self.ctx.pid == self.ctx.transmitter:
            if phase == 1:
                value = input_value_from(inbox)
                self.tree[(self.ctx.pid,)] = value
                relay = Relay(path=(self.ctx.pid,), value=value)
                return [(q, relay) for q in self.ctx.others()]
            return []
        if phase == 1:
            return []
        for envelope in inbox:
            self._store(envelope, expected_length=phase - 1)
        if phase > self.ctx.t + 1:
            return []
        outgoing: list[Outgoing] = []
        for path, value in sorted(self.tree.items()):
            if len(path) != phase - 1 or self.ctx.pid in path:
                continue
            extended = Relay(path=path + (self.ctx.pid,), value=value)
            # a processor implicitly relays to itself: its own extension is
            # a child of the EIG node and participates in the majority.
            self.tree[extended.path] = value
            for q in self.ctx.others():
                if q not in extended.path:
                    outgoing.append((q, extended))
        return outgoing

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        if self.ctx.pid != self.ctx.transmitter:
            for envelope in inbox:
                self._store(envelope, expected_length=self.ctx.t + 1)

    # --------------------------------------------------------------- decision

    def _resolve(self, path: tuple[ProcessorId, ...]) -> Value:
        """Bottom-up recursive majority over the EIG subtree at *path*.

        When we are the last relayer of *path* we commanded that
        subinstance ourselves, so our stored value is authoritative — the
        sub-lieutenants were never asked to echo it back to us.
        """
        if path[-1] == self.ctx.pid:
            return self.tree.get(path, self.default)
        if len(path) == self.ctx.t + 1:
            return self.tree.get(path, self.default)
        votes: dict[Value, int] = {}
        children = 0
        for q in range(self.ctx.n):
            if q in path:
                continue
            children += 1
            child = self._resolve(path + (q,))
            votes[child] = votes.get(child, 0) + 1
        if not children:
            return self.tree.get(path, self.default)
        best = max(votes.values())
        winners = sorted(
            (v for v, c in votes.items() if c == best), key=repr
        )
        if len(winners) == 1:
            return winners[0]
        return self.default

    def decision(self) -> Value:
        if self.ctx.pid == self.ctx.transmitter:
            return self.tree.get((self.ctx.pid,), self.default)
        if (self.ctx.transmitter,) not in self.tree and not any(
            path[0] == self.ctx.transmitter for path in self.tree
        ):
            return self.default
        return self._resolve((self.ctx.transmitter,))


class OralMessages(AgreementAlgorithm):
    """OM(t) / EIG: ``t + 1`` phases, no signatures, needs ``n > 3t``."""

    name = "oral-messages"
    authenticated = False
    phase_bound = "t + 1"
    #: the exact worst-case relay count involves ordered path counting —
    #: computed by ``upper_bound_messages``.
    message_bound = "derived"

    def __init__(self, n: int, t: int, *, default: Value = DEFAULT_VALUE) -> None:
        super().__init__(n, t)
        if n <= 3 * t:
            raise ConfigurationError(
                f"oral messages requires n > 3t (got n={n}, t={t})"
            )
        self.default = default

    def num_phases(self) -> int:
        return self.t + 1

    def make_processor(self, pid: ProcessorId) -> Processor:
        return OralMessagesProcessor(default=self.default)

    def upper_bound_messages(self) -> int:
        """Exact worst-case relay count.

        At phase ``k ≥ 2`` a processor holds at most ``P(k)`` length-
        ``(k-1)`` paths avoiding itself and relays each to the ``n - k``
        processors not on the extended path, where ``P(k)`` counts paths
        ``(transmitter, q_2, .., q_{k-1})`` of distinct non-self ids.
        """
        n, t = self.n, self.t
        total = n - 1  # phase 1, the transmitter's broadcast
        for k in range(2, t + 2):
            # choose and order k - 2 intermediate hops from the n - 2
            # processors that are neither the transmitter nor the relayer.
            paths = comb(n - 2, k - 2) * _factorial(k - 2)
            total += (n - 1) * paths * (n - k)
        return total


def _factorial(x: int) -> int:
    result = 1
    for i in range(2, x + 1):
        result *= i
    return result


@register_batch_kernel("oral-messages")
def _oral_messages_batch_kernel(
    algorithm: AgreementAlgorithm, values: Sequence[Value]
) -> list[BatchOutcome] | None:
    """Vectorised fault-free OM(t) over ``(runs, values)`` vote arrays.

    Fault-free, every EIG subtree resolves to the broadcast value, so each
    non-transmitter's root resolution is a majority over its ``n − 1``
    root-child votes — computed here as one numpy bincount/argmax per run
    (ties resolve to the default, exactly as :meth:`_resolve` does).  The
    message schedule is closed-form: computed with exact Python integers
    (the path counts overflow int64 fast) matching
    :meth:`OralMessages.upper_bound_messages` phase by phase, which
    fault-free executions attain.  Declines (``None``) on subclasses,
    missing numpy, uninternable values, or ``None`` inputs.
    """
    if type(algorithm) is not OralMessages:
        return None
    if any(value is None for value in values):
        return None
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is part of the toolchain
        return None
    try:
        table, indices, default_index = kernel_value_table(
            values, algorithm.default
        )
    except UninternableError:
        return None

    n, t = algorithm.n, algorithm.t
    runs, width = len(values), len(table)
    index_array = np.asarray(indices, dtype=np.int64)
    # Root-majority vote: n − 1 root children per lieutenant, all carrying
    # the broadcast value.  Ties (impossible with a real vote, but kept for
    # shape-faithfulness) fall back to the default, as _resolve does.
    votes = np.zeros((runs, width), dtype=np.int64)
    votes[np.arange(runs), index_array] = n - 1
    best = votes.max(axis=1)
    tie = (votes == best[:, None]).sum(axis=1) > 1
    resolved = np.where(tie, default_index, votes.argmax(axis=1))
    if n == 1:  # a lone transmitter never votes; it decides its own value
        resolved = index_array

    # Exact fault-free message schedule (== upper_bound_messages, phase by
    # phase): at phase k each of the n − 1 lieutenants relays its
    # comb(n−2, k−2)·(k−2)! held paths to the n − k off-path processors.
    per_phase: list[tuple[int, int]] = []
    if n > 1:
        per_phase.append((1, n - 1))
    for k in range(2, t + 2):
        paths = comb(n - 2, k - 2) * _factorial(k - 2)
        count = (n - 1) * paths * (n - k)
        if count > 0:
            per_phase.append((k, count))
    total = sum(count for _, count in per_phase)
    phases_used = max((phase for phase, _ in per_phase), default=0)

    outcomes: list[BatchOutcome] = []
    for row in range(runs):
        value = table[int(resolved[row])]
        decisions = {pid: value for pid in range(n)}
        decisions[algorithm.transmitter] = values[row]
        outcomes.append(
            BatchOutcome(
                decisions=tuple(sorted(decisions.items())),
                messages_by_correct=total,
                messages_by_faulty=0,
                signatures_by_correct=0,
                signatures_by_faulty=0,
                phases_used=phases_used,
                phases_configured=algorithm.num_phases(),
                messages_per_phase=tuple(per_phase),
                signatures_per_phase=tuple(
                    (phase, 0) for phase, _ in per_phase
                ),
                agreement_ok=kernel_agreement_ok(
                    algorithm, values[row], decisions
                ),
            )
        )
    return outcomes
