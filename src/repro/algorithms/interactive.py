"""Interactive consistency: every processor broadcasts, everyone agrees on
the whole vector.

The original problem of Pease–Shostak–Lamport [15], and the setting of the
paper's Section 6 opening (*"there are N processors; each wants to send a
value to everybody else"*).  Byzantine Agreement is its single-source
special case; conversely interactive consistency is ``n`` parallel BA
instances, one per source — which is exactly how this module builds it.

Instance ``i`` uses processor ``i`` as its transmitter.  The library fixes
transmitters at id 0, so instance ``i`` runs under a *rotation*: messages
of instance ``i`` are tagged with the source and carry payloads expressed
in rotated ids (``virtual = (real − i) mod n``).  Each processor ends with
the agreed vector ``[v_0, ..., v_{n-1}]``; condition (i) guarantees all
correct processors hold the same vector, condition (ii) that correct
sources' slots carry their true values.

Cost: ``n ×`` the inner algorithm's messages in the same number of phases
— with the active-set inner algorithm, ``O(n²t + nt²)``, the classic
interactive-consistency bill.  (Algorithm 4 is the paper's answer for the
*relaxed* version of this problem where ``2t`` processors may miss out.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.algorithms.base import AgreementAlgorithm, Processor
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Context
from repro.core.types import INPUT_SOURCE, ProcessorId, Value
from repro.crypto.signatures import SignatureService


@dataclass(frozen=True, slots=True)
class InstanceMessage:
    """A payload of the BA instance whose source is *source*."""

    source: ProcessorId
    payload: object


class InteractiveConsistencyProcessor(Processor):
    """Runs one rotated copy of the inner protocol per source.

    Each instance signs under its own *virtual* identity in a per-instance
    signature registry (shared across the system through the algorithm
    object): a virtual signature of ``v`` in instance ``s`` can only be
    produced through the instance key held by real processor
    ``(v + s) mod n`` — rotation preserves unforgeability.
    """

    def __init__(
        self,
        copies: Sequence[Processor],
        my_value: Value,
        services: Sequence["SignatureService"],
    ) -> None:
        self.copies = tuple(copies)
        self.my_value = my_value
        self.services = tuple(services)

    def on_bind(self) -> None:
        n = self.ctx.n
        for source, copy in enumerate(self.copies):
            virtual = (self.ctx.pid - source) % n
            service = self.services[source]
            copy.bind(
                Context(
                    pid=virtual,
                    n=n,
                    t=self.ctx.t,
                    transmitter=0,
                    key=service.key_for(virtual),
                    service=service,
                )
            )

    # ------------------------------------------------------------ rotation

    def _rotate_in(self, source: ProcessorId, envelope: Envelope) -> Envelope:
        n = self.ctx.n
        src = (
            envelope.src
            if envelope.src == INPUT_SOURCE
            else (envelope.src - source) % n
        )
        return Envelope(
            src=src,
            dst=(envelope.dst - source) % n,
            phase=envelope.phase,
            payload=envelope.payload,
        )

    def _split_inbox(self, inbox: Sequence[Envelope]) -> list[list[Envelope]]:
        n = self.ctx.n
        per_source: list[list[Envelope]] = [[] for _ in range(n)]
        for envelope in inbox:
            if envelope.is_input_edge():
                # our own instance's input edge (we are its transmitter).
                per_source[self.ctx.pid].append(
                    self._rotate_in(
                        self.ctx.pid,
                        Envelope(
                            src=INPUT_SOURCE,
                            dst=self.ctx.pid,
                            phase=envelope.phase,
                            payload=self.my_value,
                        ),
                    )
                )
                continue
            message = envelope.payload
            if not isinstance(message, InstanceMessage):
                continue
            if not 0 <= message.source < n:
                continue
            per_source[message.source].append(
                self._rotate_in(
                    message.source,
                    Envelope(
                        src=envelope.src,
                        dst=envelope.dst,
                        phase=envelope.phase,
                        payload=message.payload,
                    ),
                )
            )
        return per_source

    # ----------------------------------------------------------------- phases

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        n = self.ctx.n
        per_source = self._split_inbox(inbox)
        if phase == 1 and not any(
            e.is_input_edge() for e in inbox
        ):
            # non-transmitters of the global run still transmit in their
            # own instance: synthesise the phase-0 inedge.
            per_source[self.ctx.pid].append(
                Envelope(src=INPUT_SOURCE, dst=0, phase=0, payload=self.my_value)
            )
        outgoing: list[Outgoing] = []
        for source, copy in enumerate(self.copies):
            for dst, payload in copy.on_phase(phase, tuple(per_source[source])):
                outgoing.append(
                    (
                        (dst + source) % n,
                        InstanceMessage(source=source, payload=payload),
                    )
                )
        return outgoing

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        per_source = self._split_inbox(inbox)
        for source, copy in enumerate(self.copies):
            copy.on_final(tuple(per_source[source]))

    # --------------------------------------------------------------- results

    def vector(self) -> tuple[Value, ...]:
        """The agreed vector: instance ``i``'s decision in slot ``i``."""
        return tuple(copy.decision() for copy in self.copies)

    def decision(self) -> Value:
        return self.vector()


class InteractiveConsistency(AgreementAlgorithm):
    """``n`` parallel rotated copies of a BA algorithm.

    *values* holds every processor's private value; the global run's
    ``input_value`` fills slot 0 (the conventional transmitter) and must
    match ``values[0]`` if both are given.
    """

    name = "interactive-consistency"
    authenticated = True
    #: all budgets scale with the wrapped BA algorithm — computed from the
    #: inner instances at runtime.
    phase_bound = "derived"
    message_bound = "derived"
    signature_bound = "derived"

    def __init__(
        self,
        n: int,
        t: int,
        *,
        values: Sequence[Value],
        inner_factory: Callable[[int, int], AgreementAlgorithm],
    ) -> None:
        super().__init__(n, t)
        if len(values) != n:
            raise ConfigurationError(
                f"need one value per processor: got {len(values)} for n={n}"
            )
        self.values = tuple(values)
        self._inner = [inner_factory(n, t) for _ in range(n)]
        #: per-instance signature registries, shared by every processor of
        #: this algorithm instance (construct a fresh algorithm per run).
        self._services = SignatureService.fresh_registries(n)
        self.name = f"interactive-{self._inner[0].name}"
        self.authenticated = self._inner[0].authenticated
        if len({inner.num_phases() for inner in self._inner}) != 1:
            raise ConfigurationError("inner algorithms disagree on phase count")

    def num_phases(self) -> int:
        return self._inner[0].num_phases()

    def make_processor(self, pid: ProcessorId) -> Processor:
        copies = [inner.make_processor((pid - s) % self.n) for s, inner in enumerate(self._inner)]
        return InteractiveConsistencyProcessor(copies, self.values[pid], self._services)

    def upper_bound_messages(self) -> int | None:
        inner_bound = self._inner[0].upper_bound_messages()
        return None if inner_bound is None else self.n * inner_bound


def check_interactive_consistency(result, algorithm: InteractiveConsistency) -> list[str]:
    """The [15] conditions: all correct processors hold the same vector,
    and correct sources' slots are true.  Returns violations."""
    violations: list[str] = []
    vectors = {
        pid: result.processors[pid].vector() for pid in sorted(result.correct)
    }
    distinct = {v for v in vectors.values()}
    if len(distinct) > 1:
        violations.append(f"correct processors hold {len(distinct)} different vectors")
    for source in sorted(result.correct):
        for pid, vector in sorted(vectors.items()):
            if vector[source] != algorithm.values[source]:
                violations.append(
                    f"{pid} holds {vector[source]!r} for correct source "
                    f"{source} (true value {algorithm.values[source]!r})"
                )
    return violations
