"""The ``O(nt + t²)``-message authenticated baseline (Dolev–Strong [9]).

The paper cites [9] as the best previously known authenticated algorithm:
``t + 1`` phases and ``O(nt + t²)`` messages.  The key idea — reused by the
paper's Algorithms 3 and 5 — is that only a small *active set* needs to run
the expensive core protocol; everybody else can be informed cheaply:

* The first ``2t + 1`` processors (transmitter included) are active.
* Phases ``1 .. t+1`` — the actives run classic Dolev–Strong among
  themselves: ``O(t²)`` messages.
* Phase ``t + 2`` — every active signs its decided value and sends it to
  every passive processor: ``(2t+1)(n − 2t − 1) = O(nt)`` messages.
* A passive processor decides the value it received from at least ``t + 1``
  distinct actives (at least one of them is correct, and all correct
  actives agree), or the default value if no value reaches that quorum.

Total: ``O(nt + t²)`` messages in ``t + 2`` phases (one more phase than
[9]'s statement, which folds the informing step into the last core phase).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algorithms.algorithm3 import count_value_endorsements, unique_majority_value
from repro.algorithms.base import (
    DEFAULT_VALUE,
    AgreementAlgorithm,
    Processor,
)
from repro.algorithms.dolev_strong import DolevStrong, DolevStrongProcessor
from repro.core.errors import ConfigurationError
from repro.core.message import Envelope, Outgoing
from repro.core.protocol import Context
from repro.core.types import ProcessorId, Value
from repro.crypto.chains import SignatureChain


class ActiveSetActive(Processor):
    """An active processor: Dolev–Strong core plus the informing phase."""

    def __init__(self, inner: DolevStrongProcessor, passive: Sequence[ProcessorId]) -> None:
        self.inner = inner
        self.passive = tuple(passive)

    def on_bind(self) -> None:
        core_n = 2 * self.ctx.t + 1
        self.inner.bind(
            Context(
                pid=self.ctx.pid,
                n=core_n,
                t=self.ctx.t,
                transmitter=self.ctx.transmitter,
                key=self.ctx.key,
                service=self.ctx.service,
            )
        )

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        t = self.ctx.t
        if phase <= t + 1:
            return self.inner.on_phase(phase, inbox)
        if phase == t + 2:
            self.inner.on_final(inbox)
            decided = self.inner.decision()
            chain = SignatureChain.initial(decided, self.ctx.key, self.ctx.service)
            return [(q, chain) for q in self.passive]
        return []

    def decision(self) -> Value | None:
        return self.inner.decision()


class ActiveSetPassive(Processor):
    """A passive processor: waits for the actives' verdict."""

    def __init__(self, actives: frozenset[ProcessorId], default: Value) -> None:
        self.actives = actives
        self.default = default
        self.decided: Value | None = None

    def on_phase(self, phase: int, inbox: Sequence[Envelope]) -> Iterable[Outgoing]:
        return []

    def on_final(self, inbox: Sequence[Envelope]) -> None:
        tally = count_value_endorsements(inbox, self.actives, self.ctx)
        self.decided = unique_majority_value(tally, self.ctx.t + 1)

    def decision(self) -> Value:
        return self.decided if self.decided is not None else self.default


class ActiveSetBroadcast(AgreementAlgorithm):
    """The [9] baseline: ``t + 2`` phases, ``O(nt + t²)`` messages."""

    name = "active-set"
    authenticated = True
    phase_bound = "t + 2"
    #: the Dolev–Strong core among ``2t + 1`` actives plus the informing
    #: fan-out ``(2t + 1)(n − 2t − 1)``.
    message_bound = "(2*t + 2*t * 2 * (2*t - 1)) + (2*t + 1) * (n - 2*t - 1)"
    signature_bound = "unstated"

    def __init__(self, n: int, t: int, *, default: Value = DEFAULT_VALUE) -> None:
        super().__init__(n, t)
        if n < 2 * t + 1:
            raise ConfigurationError(
                f"the active-set baseline needs n >= 2t + 1 (got n={n}, t={t})"
            )
        self.default = default
        self.actives = frozenset(range(2 * t + 1))
        self._core = DolevStrong(2 * t + 1, t, default=default)

    def num_phases(self) -> int:
        return self.t + 2

    def make_processor(self, pid: ProcessorId) -> Processor:
        if pid in self.actives:
            inner = self._core.make_processor(pid)
            assert isinstance(inner, DolevStrongProcessor)
            return ActiveSetActive(inner, tuple(range(2 * self.t + 1, self.n)))
        return ActiveSetPassive(self.actives, self.default)

