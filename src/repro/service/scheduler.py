"""The agreement scheduler: many concurrent instances, one worker pool.

``Scheduler.serve`` takes an open-loop arrival schedule of
:class:`~repro.service.request.AgreementRequest`\\ s and multiplexes them
over the self-healing :func:`~repro.analysis.parallel.run_tasks` pool in
**waves**:

1. wait until at least one scheduled arrival is due (arrivals happen on
   the wall clock, independent of service progress — open loop);
2. take everything that has arrived, shard it by
   :meth:`~repro.service.request.AgreementRequest.config_key` into
   :class:`ServiceStripe` tasks (at most ``max_stripe`` requests each);
3. dispatch the stripes across the pool, harvest, and stamp every
   request in the wave with the wave's dispatch/harvest times.

Inside a stripe the engine reuses the repo's whole amortisation stack:

* **run-class dedup + kernels** — fault-free exact requests go through
  :func:`repro.core.batch.run_batch`, so a thousand identical requests
  cost one execution (or one row of a vectorised kernel);
* **scalar memo** — faulted exact requests dedupe on
  ``(value, fault plan)``, which fully determines the run;
* **setup cache** — the per-worker :func:`~repro.service.cache.worker_cache`
  hands every stripe of a configuration the same arena and
  :class:`~repro.crypto.signatures.SharedDigestTable`, so signature
  setup amortises across requests and waves;
* **family-aware verdicts** — approx / randomized requests run through
  the scalar runner (with per-request coin seeds) and are judged by
  :func:`repro.approx.validation.check_run_conditions`; faulted runs are
  judged crash-tolerantly with the transport's excused set.

Verdicts are deterministic in the request content (never in timing), so
the same schedule produces the same verdict multiset for any worker
count — the property ``make serve-smoke`` pins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.analysis.parallel import run_tasks
from repro.approx.validation import check_run_conditions
from repro.core.batch import BatchCase, run_batch
from repro.core.message import UninternableError, intern_key
from repro.core.runner import run as run_algorithm
from repro.core.types import Value
from repro.crypto.signatures import InternedSignatureService
from repro.service.cache import worker_cache
from repro.service.request import AgreementRequest, RequestOutcome, ScheduledRequest
from repro.service.stats import ServiceStats, build_stats

__all__ = ["ServiceStripe", "StripeResult", "Scheduler", "ServiceReport"]


@dataclass(slots=True)
class _CaseOutcome:
    """One request's result as computed inside a stripe (picklable)."""

    index: int
    ok: bool
    verdict: str
    decided: tuple[Any, ...]
    messages: int
    signatures: int
    phases_used: int
    replicated: bool = False
    kernel: bool = False
    fault_events: int = 0
    excused: tuple[int, ...] = ()


@dataclass(slots=True)
class StripeResult:
    """Everything one executed stripe reports back to the scheduler."""

    outcomes: list[_CaseOutcome] = field(default_factory=list)
    wall_s: float = 0.0
    unique_runs: int = 0
    replicated_runs: int = 0
    kernel_runs: int = 0
    scalar_runs: int = 0
    digest_hits: int = 0
    digest_misses: int = 0
    setup_hits: int = 0
    setup_misses: int = 0
    #: Sampled per-phase wall seconds: ``(phase, seconds)`` pairs from
    #: instrumented representative runs (the per-phase percentile source).
    phase_samples: tuple[tuple[int, float], ...] = ()


def _verdict_text(report) -> str:
    """Compact verdict string: ``"ok"`` or the violation summary."""
    if report.ok:
        return "ok"
    return "; ".join(report.violations) or "violation"


@dataclass(frozen=True, slots=True)
class ServiceStripe:
    """One shard of a wave: same-configuration requests, one worker task.

    Picklable by construction (strings, ints and frozen fault plans), so
    the self-healing pool can ship, retry and re-ship it.  ``cases``
    holds ``(submission index, value, fault plan, coin seed)`` tuples.
    """

    algorithm: str
    n: int
    t: int
    params: tuple[tuple[str, Any], ...]
    cases: tuple[tuple[int, Value, Any, int | None], ...]
    #: Instrumented representative runs per stripe feeding the per-phase
    #: latency percentiles (0 disables sampling).
    telemetry_sample: int = 1

    def run(self) -> StripeResult:
        """Execute every case, amortising setup, dedup and digests."""
        started = time.perf_counter()
        cache = worker_cache()
        hits0, misses0 = cache.hits, cache.misses
        algorithm, table = cache.setup((self.algorithm, self.n, self.t, self.params))
        from repro.algorithms.registry import get

        family = get(self.algorithm).family
        result = StripeResult()
        result.setup_hits = cache.hits - hits0
        result.setup_misses = cache.misses - misses0
        # The digest table outlives this stripe (it is cached per worker),
        # so report deltas, not the table's cumulative counters.
        digest_hits0, digest_misses0 = table.hits, table.misses

        # Partition: fault-free exact cases ride the batch engine (dedup
        # + kernels); everything else takes the scalar path with a
        # deterministic-key memo.
        batchable: list[tuple[int, Value]] = []
        scalar: list[tuple[int, Value, Any, int | None]] = []
        for index, value, plan, coin_seed in self.cases:
            if family == "exact" and plan is None and coin_seed is None:
                batchable.append((index, value))
            else:
                scalar.append((index, value, plan, coin_seed))

        if batchable:
            batch = run_batch(
                algorithm, [BatchCase(value=v) for _, v in batchable], table=table
            )
            for (index, _), outcome in zip(batchable, batch.outcomes):
                decided = tuple(
                    sorted({v for _, v in outcome.decisions}, key=repr)
                )
                result.outcomes.append(
                    _CaseOutcome(
                        index=index,
                        ok=outcome.agreement_ok,
                        verdict="ok" if outcome.agreement_ok else "ba_violation",
                        decided=decided,
                        messages=outcome.messages_by_correct,
                        signatures=outcome.signatures_by_correct,
                        phases_used=outcome.phases_used,
                        replicated=outcome.replicated,
                        kernel=outcome.kernel,
                    )
                )
            stats = batch.stats
            result.unique_runs += stats.unique_runs
            result.replicated_runs += stats.replicated_runs
            result.kernel_runs += stats.kernel_runs
            result.scalar_runs += stats.scalar_runs

        memo: dict[Any, _CaseOutcome] = {}
        for index, value, plan, coin_seed in scalar:
            try:
                key = (intern_key(value), plan, coin_seed)
            except (UninternableError, TypeError):
                key = None
            cached = memo.get(key) if key is not None else None
            if cached is not None:
                outcome = _CaseOutcome(
                    **{
                        f: getattr(cached, f)
                        for f in (
                            "ok",
                            "verdict",
                            "decided",
                            "messages",
                            "signatures",
                            "phases_used",
                            "fault_events",
                            "excused",
                        )
                    },
                    index=index,
                    replicated=True,
                )
                result.outcomes.append(outcome)
                result.replicated_runs += 1
                continue
            outcome = self._run_scalar(algorithm, table, index, value, plan, coin_seed)
            result.unique_runs += 1
            result.scalar_runs += 1
            if key is not None:
                memo[key] = outcome
            result.outcomes.append(outcome)

        if self.telemetry_sample > 0 and self.cases:
            result.phase_samples = self._sample_phases(algorithm)
        result.digest_hits = table.hits - digest_hits0
        result.digest_misses = table.misses - digest_misses0
        result.wall_s = time.perf_counter() - started
        return result

    def _run_scalar(
        self,
        algorithm,
        table,
        index: int,
        value: Value,
        plan,
        coin_seed: int | None,
    ) -> _CaseOutcome:
        """One runner execution with the family's own correctness reading."""
        transport = None
        if plan is not None and not plan.is_empty:
            from repro.transport.faulty import FaultyTransport

            transport = FaultyTransport(plan)
        coins = None
        if getattr(algorithm, "uses_coins", False):
            coins = algorithm.make_coin_source(coin_seed or 0)
        run_result = run_algorithm(
            algorithm,
            value,
            record_history=False,
            transport=transport,
            service=InternedSignatureService(table),
            coins=coins,
        )
        excused: frozenset[int] = frozenset()
        if run_result.fault_events:
            from repro.transport import excused_processors

            excused = excused_processors(run_result.fault_events) & run_result.correct
        report = check_run_conditions(run_result, algorithm, excused=excused)
        metrics = run_result.metrics
        decided = tuple(
            sorted(
                {
                    v
                    for pid, v in run_result.decisions.items()
                    if pid not in excused
                },
                key=repr,
            )
        )
        return _CaseOutcome(
            index=index,
            ok=report.ok,
            verdict=_verdict_text(report),
            decided=decided,
            messages=metrics.messages_by_correct,
            signatures=metrics.signatures_by_correct,
            phases_used=metrics.last_active_phase,
            fault_events=len(run_result.fault_events),
            excused=tuple(sorted(excused)),
        )

    def _sample_phases(self, algorithm) -> tuple[tuple[int, float], ...]:
        """Per-phase wall times from instrumented representative runs."""
        samples: list[tuple[int, float]] = []
        for index, value, plan, coin_seed in self.cases[: self.telemetry_sample]:
            if plan is not None and not plan.is_empty:
                continue  # faulted runs would time the fault, not the phase
            coins = None
            if getattr(algorithm, "uses_coins", False):
                coins = algorithm.make_coin_source(coin_seed or 0)
            run_result = run_algorithm(
                algorithm,
                value,
                record_history=False,
                collect_telemetry=True,
                coins=coins,
            )
            telemetry = run_result.telemetry
            if telemetry is not None:
                samples.extend(
                    (timing.phase, timing.wall_s) for timing in telemetry.per_phase
                )
        return tuple(samples)


@dataclass(slots=True)
class ServiceReport:
    """What ``Scheduler.serve`` returns: per-request outcomes + stats."""

    outcomes: list[RequestOutcome]
    stats: ServiceStats

    def failures(self) -> list[RequestOutcome]:
        """The outcomes whose verdict is not ``"ok"``."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def verdict_counts(self) -> dict[str, int]:
        """Multiset of verdict strings (the determinism witness)."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.verdict] = counts.get(outcome.verdict, 0) + 1
        return dict(sorted(counts.items()))


class Scheduler:
    """Wave-dispatching front end over the self-healing worker pool.

    Args:
        workers: pool size per wave (``None``: ``$REPRO_SWEEP_WORKERS``
            or the CPU count; ``1`` serves serially in-process, which
            also makes the setup cache traffic-lifetime instead of
            wave-lifetime).
        max_stripe: cap on requests per stripe — the batching stripe of
            the sizing formula (``workers × max_stripe`` requests in
            flight per wave).
        telemetry_sample: instrumented representative runs per stripe
            feeding the per-phase percentiles (0 disables).
        task_timeout / max_retries: the pool's self-healing knobs, as in
            :func:`~repro.analysis.parallel.run_tasks`.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        max_stripe: int = 256,
        telemetry_sample: int = 1,
        task_timeout: float | None = None,
        max_retries: int = 2,
    ) -> None:
        if max_stripe < 1:
            raise ValueError(f"max_stripe must be >= 1, got {max_stripe}")
        self.workers = workers
        self.max_stripe = max_stripe
        self.telemetry_sample = telemetry_sample
        self.task_timeout = task_timeout
        self.max_retries = max_retries

    def _stripes(
        self, wave: Sequence[tuple[int, AgreementRequest]]
    ) -> list[ServiceStripe]:
        """Shard one wave by configuration, splitting at ``max_stripe``."""
        shards: dict[tuple, list[tuple[int, Value, Any, int | None]]] = {}
        for index, request in wave:
            shards.setdefault(request.config_key(), []).append(
                (index, request.value, request.fault_plan, request.coin_seed)
            )
        stripes: list[ServiceStripe] = []
        for key in sorted(shards, key=repr):
            name, n, t, params = key
            cases = shards[key]
            for offset in range(0, len(cases), self.max_stripe):
                stripes.append(
                    ServiceStripe(
                        algorithm=name,
                        n=n,
                        t=t,
                        params=params,
                        cases=tuple(cases[offset : offset + self.max_stripe]),
                        telemetry_sample=self.telemetry_sample,
                    )
                )
        return stripes

    def serve(
        self,
        scheduled: Sequence[ScheduledRequest],
        *,
        clock: Callable[[], float] = time.perf_counter,
        sleep: Callable[[float], None] = time.sleep,
    ) -> ServiceReport:
        """Serve *scheduled* open-loop; block until every request finished.

        *clock* and *sleep* are injectable for deterministic tests; the
        defaults are the real wall clock.  Outcomes are returned in
        submission order regardless of wave or worker assignment.
        """
        submissions = list(scheduled)
        outcomes: list[RequestOutcome | None] = [None] * len(submissions)
        # Arrival order, stable on submission index for equal offsets.
        order = sorted(
            range(len(submissions)), key=lambda i: (submissions[i].arrival_s, i)
        )
        aggregates = StripeResult()
        phase_samples: list[tuple[int, float]] = []
        waves = 0
        start = clock()
        cursor = 0
        while cursor < len(order):
            now = clock() - start
            head = submissions[order[cursor]].arrival_s
            if head > now:
                sleep(min(head - now, 0.05))
                continue
            wave: list[tuple[int, AgreementRequest]] = []
            while cursor < len(order):
                item = submissions[order[cursor]]
                if item.arrival_s > now:
                    break
                wave.append((order[cursor], item.request))
                cursor += 1
            dispatch_s = clock() - start
            stripe_results: list[StripeResult] = run_tasks(
                self._stripes(wave),
                workers=self.workers,
                task_timeout=self.task_timeout,
                max_retries=self.max_retries,
            )
            harvest_s = clock() - start
            waves += 1
            for stripe_result in stripe_results:
                per_request = (
                    stripe_result.wall_s / len(stripe_result.outcomes)
                    if stripe_result.outcomes
                    else 0.0
                )
                for case in stripe_result.outcomes:
                    request = submissions[case.index].request
                    outcomes[case.index] = RequestOutcome(
                        request_id=request.request_id,
                        algorithm=request.algorithm,
                        ok=case.ok,
                        verdict=case.verdict,
                        decided=case.decided,
                        messages=case.messages,
                        signatures=case.signatures,
                        phases_used=case.phases_used,
                        replicated=case.replicated,
                        kernel=case.kernel,
                        arrival_s=submissions[case.index].arrival_s,
                        start_s=dispatch_s,
                        finish_s=harvest_s,
                        stripe_s=per_request,
                        fault_events=case.fault_events,
                        excused=case.excused,
                    )
                for counter in (
                    "unique_runs",
                    "replicated_runs",
                    "kernel_runs",
                    "scalar_runs",
                    "digest_hits",
                    "digest_misses",
                    "setup_hits",
                    "setup_misses",
                ):
                    setattr(
                        aggregates,
                        counter,
                        getattr(aggregates, counter) + getattr(stripe_result, counter),
                    )
                phase_samples.extend(stripe_result.phase_samples)
        wall_s = clock() - start
        finished = [outcome for outcome in outcomes if outcome is not None]
        assert len(finished) == len(submissions), "every request must complete"
        stats = build_stats(
            finished,
            wall_s=wall_s,
            waves=waves,
            aggregates=aggregates,
            phase_samples=phase_samples,
        )
        return ServiceReport(outcomes=finished, stats=stats)
