"""Seeded open-loop traffic generation for the agreement service.

The generator turns ``(requests, rate, seed, mix)`` into a deterministic
:class:`~repro.service.request.ScheduledRequest` list:

* **arrivals** are a Poisson process — exponential inter-arrival gaps at
  *rate* requests/sec, drawn from ``random.Random(seed)`` — the standard
  open-loop model: arrival times never depend on service progress, so
  overload shows up as queueing delay instead of silently throttled
  offered load;
* the **workload mix** is a weighted choice over
  :class:`MixItem` configurations, parsed from a compact spec string
  (see :func:`parse_mix`), with input values drawn 0/1 per request;
* an optional **fault rate** attaches a seeded benign
  :func:`~repro.transport.faults.random_plan` to that fraction of the
  *exact*-family requests (approx/randomized chaos has its own harness
  in :mod:`repro.fuzz`);
* **randomized** entries (``family == "randomized"``) get a per-request
  coin seed derived by hashing ``(seed, request id)``, so verdicts stay
  reproducible while coin streams stay independent.

Everything downstream — scheduler, verdicts, summary — is a pure
function of the generated schedule, which is why ``repro loadgen`` with
a fixed seed prints the same verdict multiset on every run.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Sequence

from repro.algorithms.registry import get
from repro.service.request import AgreementRequest, ScheduledRequest

__all__ = [
    "MixItem",
    "MixSpecError",
    "DEFAULT_MIX",
    "parse_mix",
    "generate_schedule",
]

#: The default workload mix: two exact-BA configurations (one with a
#: batch kernel) plus an ε-agreement instance — enough to exercise the
#: batch, kernel and scalar service paths in one traffic run.
DEFAULT_MIX = (
    "algorithm-3:n=60,t=2:3; phase-king:n=24,t=2:2; midpoint-approx:n=8,t=2:1"
)


class MixSpecError(ValueError):
    """A ``--mix`` clause could not be parsed or names an unknown target."""


@dataclass(frozen=True, slots=True)
class MixItem:
    """One weighted configuration of the traffic mix."""

    algorithm: str
    n: int
    t: int
    params: tuple[tuple[str, Any], ...] = ()
    weight: float = 1.0

    @property
    def family(self) -> str:
        """The registry family (exact / approx / randomized)."""
        return get(self.algorithm).family


def _parse_param(key: str, text: str) -> Any:
    """Parse one ``key=value`` as int when possible, else float."""
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            raise MixSpecError(
                f"mix parameter {key}={text!r} is neither int nor float"
            ) from None


def parse_mix(spec: str) -> list[MixItem]:
    """Parse a mix spec: ``NAME:k=v,k=v[:WEIGHT]`` clauses joined by ``;``.

    Example::

        algorithm-3:n=60,t=2:3; phase-king:n=24,t=2:2; ben-or:n=11,t=2:1

    ``n`` and ``t`` are required in every clause; remaining pairs become
    constructor params (``s``, ``eps``, ``max_rounds`` …).  The trailing
    ``:WEIGHT`` defaults to 1.  Raises :class:`MixSpecError` on unknown
    algorithms, missing ``n``/``t``, or non-positive weights.
    """
    items: list[MixItem] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        pieces = clause.split(":")
        if len(pieces) not in (2, 3):
            raise MixSpecError(
                f"mix clause {clause!r} is not NAME:k=v,k=v[:WEIGHT]"
            )
        name = pieces[0].strip()
        try:
            info = get(name)
        except KeyError as error:
            raise MixSpecError(str(error)) from None
        pairs: dict[str, Any] = {}
        for pair in pieces[1].split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            if not sep:
                raise MixSpecError(f"mix clause {clause!r}: {pair!r} is not k=v")
            pairs[key.strip()] = _parse_param(key.strip(), value.strip())
        if "n" not in pairs or "t" not in pairs:
            raise MixSpecError(f"mix clause {clause!r} must set n= and t=")
        weight = 1.0
        if len(pieces) == 3:
            try:
                weight = float(pieces[2])
            except ValueError:
                raise MixSpecError(
                    f"mix clause {clause!r}: weight {pieces[2]!r} is not a number"
                ) from None
        if weight <= 0:
            raise MixSpecError(f"mix clause {clause!r}: weight must be positive")
        n = int(pairs.pop("n"))
        t = int(pairs.pop("t"))
        items.append(
            MixItem(
                algorithm=info.name,
                n=n,
                t=t,
                params=tuple(sorted(pairs.items())),
                weight=weight,
            )
        )
    if not items:
        raise MixSpecError(f"mix spec {spec!r} contains no clauses")
    return items


def _derived_seed(seed: int, request_id: int, label: str) -> int:
    """A per-request 63-bit seed, stable across platforms."""
    digest = hashlib.sha256(f"{seed}:{label}:{request_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def generate_schedule(
    *,
    requests: int,
    rate: float,
    seed: int,
    mix: Sequence[MixItem] | str = DEFAULT_MIX,
    fault_rate: float = 0.0,
) -> list[ScheduledRequest]:
    """The deterministic open-loop schedule for one traffic run.

    Args:
        requests: how many requests to generate.
        rate: mean offered load in requests/sec (Poisson arrivals).
        seed: master seed; every random draw derives from it.
        mix: a :func:`parse_mix` spec string or pre-parsed items.
        fault_rate: fraction of *exact*-family requests that carry a
            seeded benign fault plan (in ``[0, 1]``).

    Returns:
        ``ScheduledRequest`` list in arrival order, request ids ``0..N-1``
        in arrival order.
    """
    if requests < 0:
        raise ValueError(f"requests must be >= 0, got {requests}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
    items = parse_mix(mix) if isinstance(mix, str) else list(mix)
    if not items:
        raise MixSpecError("empty mix")
    weights = [item.weight for item in items]
    # Prototype instances answer num_phases() for fault-plan shaping —
    # built once per mix item, never run.
    prototypes = {
        item: get(item.algorithm)(item.n, item.t, **dict(item.params))
        for item in items
    }
    rng = random.Random(seed)
    schedule: list[ScheduledRequest] = []
    arrival = 0.0
    for request_id in range(requests):
        arrival += rng.expovariate(rate)
        item = rng.choices(items, weights=weights)[0]
        prototype = prototypes[item]
        if prototype.value_domain is not None:
            value = rng.choice(sorted(prototype.value_domain, key=repr))
        else:
            value = rng.randint(0, 1)
        plan = None
        if (
            fault_rate > 0.0
            and item.family == "exact"
            and rng.random() < fault_rate
        ):
            from repro.transport.faults import random_plan

            plan = random_plan(
                _derived_seed(seed, request_id, "fault"),
                n=item.n,
                t=item.t,
                num_phases=prototype.num_phases(),
                rate=0.5,
            )
            if plan.is_empty:
                plan = None
        coin_seed = (
            _derived_seed(seed, request_id, "coin")
            if item.family == "randomized"
            else None
        )
        schedule.append(
            ScheduledRequest(
                arrival_s=arrival,
                request=AgreementRequest(
                    request_id=request_id,
                    algorithm=item.algorithm,
                    n=item.n,
                    t=item.t,
                    value=value,
                    params=item.params,
                    fault_plan=plan,
                    coin_seed=coin_seed,
                ),
            )
        )
    return schedule
