"""Per-worker setup cache: amortise arenas and digest tables across stripes.

Constructing an algorithm and warming its signature-digest table is pure
per-``(algorithm, n, t, params)`` work — exactly the key two requests
share when they hit the same *configuration* of the zoo.  The service
layer therefore memoizes, per worker process:

* the **arena** — one configured
  :class:`~repro.core.protocol.AgreementAlgorithm` instance serving every
  run of that configuration (processors are minted fresh per run; the
  instance itself is stateless across runs, the same invariant
  :func:`repro.core.batch.run_batch` relies on);
* the **digest table** — one
  :class:`~repro.crypto.signatures.SharedDigestTable` per configuration,
  so a payload's signature digest is computed once per worker lifetime
  instead of once per request.

The cache is deliberately *process-local* (one module-level instance per
worker, reached through :func:`worker_cache`): digest tables are plain
dicts, and sharing them across processes would cost more in pickling
than it saves in hashing.  A serial scheduler (``workers=1``) keeps one
cache for the whole traffic run, which is where the hit counters in
``repro loadgen``'s report come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.algorithms.registry import get
from repro.core.protocol import AgreementAlgorithm
from repro.crypto.signatures import SharedDigestTable

__all__ = ["SetupCache", "worker_cache", "reset_worker_cache"]

#: The cache key: ``AgreementRequest.config_key()``'s shape.
ConfigKey = tuple[str, int, int, tuple[tuple[str, Any], ...]]


@dataclass(slots=True)
class _Entry:
    algorithm: AgreementAlgorithm
    table: SharedDigestTable


class SetupCache:
    """Memoized ``config_key -> (arena, digest table)`` with hit counters."""

    def __init__(self) -> None:
        self._entries: dict[ConfigKey, _Entry] = {}
        self.hits = 0
        self.misses = 0

    def setup(self, key: ConfigKey) -> tuple[AgreementAlgorithm, SharedDigestTable]:
        """The arena and digest table for *key*, building both on first use."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            name, n, t, params = key
            algorithm = get(name)(n, t, **dict(params))
            entry = _Entry(algorithm=algorithm, table=SharedDigestTable())
            self._entries[key] = entry
        else:
            self.hits += 1
        return entry.algorithm, entry.table

    def __len__(self) -> int:
        return len(self._entries)


_WORKER_CACHE: SetupCache | None = None


def worker_cache() -> SetupCache:
    """This process's :class:`SetupCache` (created on first use)."""
    # Process-local by design: each pool worker memoises its own arenas
    # and never expects cross-worker visibility.
    global _WORKER_CACHE  # noqa: BA009
    if _WORKER_CACHE is None:
        _WORKER_CACHE = SetupCache()
    return _WORKER_CACHE


def reset_worker_cache() -> None:
    """Drop the process-local cache (tests; also frees arenas)."""
    global _WORKER_CACHE
    _WORKER_CACHE = None
