"""Agreement-as-a-service: multiplexed instances under load.

The serving layer the ROADMAP's "millions of users" story asks for:
many concurrent agreement instances multiplexed over the self-healing
worker pool, with run-class deduplication, per-worker setup caching and
capacity metrics (agreements/sec, latency percentiles) exported through
:mod:`repro.obs.export`.

Pieces:

* :mod:`repro.service.request` — the ``repro-service/1`` wire objects
  (:class:`AgreementRequest`, :class:`RequestOutcome`);
* :mod:`repro.service.loadgen` — seeded Poisson open-loop traffic with a
  weighted workload mix (:func:`generate_schedule`, :func:`parse_mix`);
* :mod:`repro.service.scheduler` — wave dispatch over
  :func:`~repro.analysis.parallel.run_tasks` with batch/kernel/memo
  amortisation (:class:`Scheduler`);
* :mod:`repro.service.cache` — per-worker arena + digest-table memo;
* :mod:`repro.service.stats` — nearest-rank percentile summaries and the
  agreements/sec product metric (:class:`ServiceStats`).

See ``docs/service.md`` for the capacity-planning guide and the latency
methodology, and ``repro loadgen`` / ``repro serve`` for the CLI pair.
"""

from repro.service.cache import SetupCache, reset_worker_cache, worker_cache
from repro.service.loadgen import (
    DEFAULT_MIX,
    MixItem,
    MixSpecError,
    generate_schedule,
    parse_mix,
)
from repro.service.request import (
    SERVICE_SCHEMA,
    AgreementRequest,
    RequestFormatError,
    RequestOutcome,
    ScheduledRequest,
)
from repro.service.scheduler import (
    Scheduler,
    ServiceReport,
    ServiceStripe,
    StripeResult,
)
from repro.service.stats import (
    LatencySummary,
    ServiceStats,
    build_stats,
    percentile,
)

__all__ = [
    "DEFAULT_MIX",
    "SERVICE_SCHEMA",
    "AgreementRequest",
    "LatencySummary",
    "MixItem",
    "MixSpecError",
    "RequestFormatError",
    "RequestOutcome",
    "ScheduledRequest",
    "Scheduler",
    "ServiceReport",
    "ServiceStats",
    "ServiceStripe",
    "SetupCache",
    "StripeResult",
    "build_stats",
    "generate_schedule",
    "parse_mix",
    "percentile",
    "reset_worker_cache",
    "worker_cache",
]
