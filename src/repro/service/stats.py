"""Capacity metrics for a traffic run: throughput and latency percentiles.

The product metric of the service layer is **agreements/sec** — completed,
verdict-ok instances per wall-clock second — sitting next to the engine
metric messages/sec.  Latency is summarised per *stage* (end-to-end,
queue wait, in-service) and per *phase* (from sampled instrumented runs)
as nearest-rank percentiles: p50/p95/p99 over the measured samples, no
interpolation, so a reported number is always one that actually occurred.
Everything here is arithmetic over finished
:class:`~repro.service.request.RequestOutcome` records — no clocks, no
I/O — which is what makes the unit tests exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.service.request import RequestOutcome
    from repro.service.scheduler import StripeResult

__all__ = ["percentile", "LatencySummary", "ServiceStats", "build_stats"]

#: The quantiles every latency family reports, in export order.
QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of *samples* (``0 < q <= 1``).

    The classic ceil(q·N)-th order statistic: an actual sample, never an
    interpolation.  Raises :class:`ValueError` on an empty sample set or
    a quantile outside ``(0, 1]``.
    """
    import math

    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    ordered = sorted(samples)
    # The 1e-9 slack keeps exact ranks exact: 0.99 * 100 floats to
    # 99.00000000000001, which a bare ceil would round up to rank 100.
    rank = max(1, math.ceil(len(ordered) * q - 1e-9))
    return ordered[rank - 1]


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Nearest-rank percentile summary of one latency family."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float
    max_s: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencySummary | None":
        """Summarise *samples*; ``None`` when there are none."""
        values = list(samples)
        if not values:
            return None
        return cls(
            count=len(values),
            mean_s=sum(values) / len(values),
            p50_s=percentile(values, 0.5),
            p95_s=percentile(values, 0.95),
            p99_s=percentile(values, 0.99),
            max_s=max(values),
        )

    def to_json_dict(self) -> dict[str, Any]:
        """Flat JSON form (rounded to microseconds)."""
        return {
            "count": self.count,
            "mean_s": round(self.mean_s, 6),
            "p50_s": round(self.p50_s, 6),
            "p95_s": round(self.p95_s, 6),
            "p99_s": round(self.p99_s, 6),
            "max_s": round(self.max_s, 6),
        }


@dataclass(slots=True)
class ServiceStats:
    """Everything a capacity planner reads off one finished traffic run."""

    requests: int = 0
    ok: int = 0
    failed: int = 0
    wall_s: float = 0.0
    waves: int = 0
    messages_total: int = 0
    signatures_total: int = 0
    #: Amortisation counters aggregated over every stripe of the run.
    unique_runs: int = 0
    replicated_runs: int = 0
    kernel_runs: int = 0
    scalar_runs: int = 0
    digest_hits: int = 0
    digest_misses: int = 0
    setup_hits: int = 0
    setup_misses: int = 0
    e2e: LatencySummary | None = None
    queue: LatencySummary | None = None
    service: LatencySummary | None = None
    #: Sampled per-phase wall-time summaries, keyed by phase number.
    per_phase: dict[int, LatencySummary] = field(default_factory=dict)
    #: Per-algorithm request/ok counts, keyed by registry name.
    per_algorithm: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def agreements_per_sec(self) -> float | None:
        """Verdict-ok completions per wall second (the product metric)."""
        return (self.ok / self.wall_s) if self.wall_s > 0 else None

    @property
    def requests_per_sec(self) -> float | None:
        """All completions (ok or not) per wall second."""
        return (self.requests / self.wall_s) if self.wall_s > 0 else None

    @property
    def messages_per_sec(self) -> float | None:
        """Correct-sender messages moved per wall second."""
        return (self.messages_total / self.wall_s) if self.wall_s > 0 else None

    @property
    def dedup_ratio(self) -> float | None:
        """Requests served per run actually executed (``None``: no runs)."""
        return (self.requests / self.unique_runs) if self.unique_runs else None

    def to_json_dict(self) -> dict[str, Any]:
        """Flat JSON form (the ``repro loadgen``/``serve`` summary)."""

        def rate(value: float | None) -> float | None:
            return round(value, 2) if value is not None else None

        return {
            "requests": self.requests,
            "ok": self.ok,
            "failed": self.failed,
            "wall_s": round(self.wall_s, 6),
            "waves": self.waves,
            "agreements_per_sec": rate(self.agreements_per_sec),
            "requests_per_sec": rate(self.requests_per_sec),
            "messages_total": self.messages_total,
            "signatures_total": self.signatures_total,
            "messages_per_sec": rate(self.messages_per_sec),
            "unique_runs": self.unique_runs,
            "replicated_runs": self.replicated_runs,
            "kernel_runs": self.kernel_runs,
            "scalar_runs": self.scalar_runs,
            "dedup_ratio": rate(self.dedup_ratio),
            "digest_hits": self.digest_hits,
            "digest_misses": self.digest_misses,
            "setup_hits": self.setup_hits,
            "setup_misses": self.setup_misses,
            "latency": {
                stage: summary.to_json_dict()
                for stage, summary in (
                    ("e2e", self.e2e),
                    ("queue", self.queue),
                    ("service", self.service),
                )
                if summary is not None
            },
            "per_phase": {
                str(phase): summary.to_json_dict()
                for phase, summary in sorted(self.per_phase.items())
            },
            "per_algorithm": {
                name: dict(counts)
                for name, counts in sorted(self.per_algorithm.items())
            },
        }


def build_stats(
    outcomes: Sequence["RequestOutcome"],
    *,
    wall_s: float,
    waves: int,
    aggregates: "StripeResult | None" = None,
    phase_samples: Iterable[tuple[int, float]] = (),
) -> ServiceStats:
    """Fold finished outcomes (plus stripe aggregates) into one summary."""
    stats = ServiceStats(requests=len(outcomes), wall_s=wall_s, waves=waves)
    for outcome in outcomes:
        if outcome.ok:
            stats.ok += 1
        else:
            stats.failed += 1
        stats.messages_total += outcome.messages
        stats.signatures_total += outcome.signatures
        per = stats.per_algorithm.setdefault(
            outcome.algorithm, {"requests": 0, "ok": 0}
        )
        per["requests"] += 1
        per["ok"] += int(outcome.ok)
    if aggregates is not None:
        for counter in (
            "unique_runs",
            "replicated_runs",
            "kernel_runs",
            "scalar_runs",
            "digest_hits",
            "digest_misses",
            "setup_hits",
            "setup_misses",
        ):
            setattr(stats, counter, getattr(aggregates, counter))
    stats.e2e = LatencySummary.from_samples(o.latency_s for o in outcomes)
    stats.queue = LatencySummary.from_samples(o.queue_wait_s for o in outcomes)
    stats.service = LatencySummary.from_samples(o.service_s for o in outcomes)
    by_phase: dict[int, list[float]] = {}
    for phase, seconds in phase_samples:
        by_phase.setdefault(int(phase), []).append(seconds)
    stats.per_phase = {
        phase: summary
        for phase, samples in sorted(by_phase.items())
        if (summary := LatencySummary.from_samples(samples)) is not None
    }
    return stats
