"""The service layer's wire objects: requests, arrivals, outcomes.

An :class:`AgreementRequest` is one customer's ask: *run this agreement
instance and tell me what was decided*.  It is a frozen, picklable value
object — the scheduler ships stripes of them to worker processes — and it
round-trips through the schema-versioned ``repro-service/1`` JSON form
that ``repro serve`` reads and ``repro loadgen --emit`` writes.

A :class:`ScheduledRequest` pairs a request with its *arrival offset*
(seconds after traffic start).  The load generator produces these from a
seeded Poisson process; the scheduler replays them open-loop — arrivals
happen on schedule whether or not earlier requests have finished, which
is what makes the measured queue waits honest under overload.

A :class:`RequestOutcome` is the per-request completion record: the
verdict, the cost counters, and the three timestamps (arrival, dispatch,
completion) every latency percentile in :mod:`repro.service.stats` is
derived from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, TYPE_CHECKING

from repro.core.types import Value

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.transport.faults import FaultPlan

#: Schema tag carried by every serialized request line.
SERVICE_SCHEMA = "repro-service/1"

__all__ = [
    "SERVICE_SCHEMA",
    "AgreementRequest",
    "ScheduledRequest",
    "RequestOutcome",
    "RequestFormatError",
]


class RequestFormatError(ValueError):
    """A serialized request line is missing fields or malformed."""


@dataclass(frozen=True, slots=True)
class AgreementRequest:
    """One agreement instance to run, as submitted by a client.

    ``params`` are the extra constructor keywords (``s``, ``eps``,
    ``max_rounds`` …) as a sorted tuple of pairs so the request stays
    hashable and picklable.  ``fault_plan`` injects benign delivery
    faults into this instance only; ``coin_seed`` is required by (and
    only meaningful for) coin-flipping algorithms.
    """

    request_id: int
    algorithm: str
    n: int
    t: int
    value: Value
    params: tuple[tuple[str, Any], ...] = ()
    fault_plan: "FaultPlan | None" = None
    coin_seed: int | None = None

    def config_key(self) -> tuple[str, int, int, tuple[tuple[str, Any], ...]]:
        """The setup-cache / sharding key: everything amortisable.

        Two requests with equal config keys can share one algorithm
        arena and one digest table; only ``value``, ``fault_plan`` and
        ``coin_seed`` vary within a shard.
        """
        return (self.algorithm, self.n, self.t, self.params)

    def to_json_dict(self) -> dict[str, Any]:
        """The ``repro-service/1`` JSON form (one JSONL line)."""
        data: dict[str, Any] = {
            "schema": SERVICE_SCHEMA,
            "request_id": self.request_id,
            "algorithm": self.algorithm,
            "n": self.n,
            "t": self.t,
            "value": self.value,
        }
        if self.params:
            data["params"] = dict(self.params)
        if self.fault_plan is not None and not self.fault_plan.is_empty:
            data["fault_plan"] = self.fault_plan.to_json_dict()
        if self.coin_seed is not None:
            data["coin_seed"] = self.coin_seed
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "AgreementRequest":
        """Parse one ``repro-service/1`` line; raise on malformed input."""
        if not isinstance(data, Mapping):
            raise RequestFormatError(f"request line is not an object: {data!r}")
        schema = data.get("schema", SERVICE_SCHEMA)
        if schema != SERVICE_SCHEMA:
            raise RequestFormatError(
                f"unknown request schema {schema!r} (expected {SERVICE_SCHEMA!r})"
            )
        missing = [
            key
            for key in ("request_id", "algorithm", "n", "t", "value")
            if key not in data
        ]
        if missing:
            raise RequestFormatError(f"request line missing {missing}")
        plan = None
        if data.get("fault_plan") is not None:
            from repro.transport.faults import FaultPlan

            plan = FaultPlan.from_json_dict(data["fault_plan"])
        params = data.get("params") or {}
        if not isinstance(params, Mapping):
            raise RequestFormatError(f"params must be an object, got {params!r}")
        coin_seed = data.get("coin_seed")
        return cls(
            request_id=int(data["request_id"]),
            algorithm=str(data["algorithm"]),
            n=int(data["n"]),
            t=int(data["t"]),
            value=data["value"],
            params=tuple(sorted(params.items())),
            fault_plan=plan,
            coin_seed=int(coin_seed) if coin_seed is not None else None,
        )


@dataclass(frozen=True, slots=True)
class ScheduledRequest:
    """A request plus its open-loop arrival offset (seconds from start)."""

    arrival_s: float
    request: AgreementRequest


@dataclass(slots=True)
class RequestOutcome:
    """Completion record of one served request.

    Timing model (see ``docs/service.md`` for the methodology): the
    scheduler dispatches arrivals in waves, so ``start_s`` is the wave's
    dispatch time and ``finish_s`` the wave's harvest time — every
    percentile derived from them measures what a client would observe,
    including time spent queued behind an in-flight wave.  ``stripe_s``
    is the in-worker execution cost of the request's stripe amortised
    over its requests (the number the sizing formula uses).
    """

    request_id: int
    algorithm: str
    ok: bool
    verdict: str
    decided: tuple[Any, ...] = ()
    messages: int = 0
    signatures: int = 0
    phases_used: int = 0
    replicated: bool = False
    kernel: bool = False
    arrival_s: float = 0.0
    start_s: float = 0.0
    finish_s: float = 0.0
    stripe_s: float = 0.0
    fault_events: int = 0
    excused: tuple[int, ...] = ()

    @property
    def queue_wait_s(self) -> float:
        """Seconds between arrival and wave dispatch."""
        return max(0.0, self.start_s - self.arrival_s)

    @property
    def service_s(self) -> float:
        """Seconds between wave dispatch and wave harvest."""
        return max(0.0, self.finish_s - self.start_s)

    @property
    def latency_s(self) -> float:
        """End-to-end seconds between arrival and completion."""
        return max(0.0, self.finish_s - self.arrival_s)

    def to_json_dict(self) -> dict[str, Any]:
        """The response JSONL line ``repro serve`` writes."""
        data: dict[str, Any] = {
            "schema": SERVICE_SCHEMA,
            "request_id": self.request_id,
            "algorithm": self.algorithm,
            "ok": self.ok,
            "verdict": self.verdict,
            "decided": list(self.decided),
            "messages": self.messages,
            "signatures": self.signatures,
            "phases_used": self.phases_used,
            "latency_s": round(self.latency_s, 6),
            "queue_wait_s": round(self.queue_wait_s, 6),
        }
        if self.excused:
            data["excused"] = list(self.excused)
        return data
