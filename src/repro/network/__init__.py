"""Logical topologies used by the paper's algorithms."""

from repro.network.topology import (
    BinaryTree,
    BipartiteRelayGraph,
    Grid,
    TreeForest,
    smallest_square_above,
)

__all__ = [
    "BinaryTree",
    "BipartiteRelayGraph",
    "Grid",
    "TreeForest",
    "smallest_square_above",
]
