"""Logical topologies used by the paper's algorithms.

The communication network is always the complete graph; these structures are
*logical* overlays the algorithms route along:

* Algorithm 1 relays "correct 1-messages" along the graph ``G`` formed by a
  complete bipartite graph on the two halves ``A``, ``B`` of the
  non-transmitter processors plus the transmitter connected to everyone —
  :class:`BipartiteRelayGraph`.
* Algorithm 4 arranges ``N = m²`` processors in an ``m × m`` grid and
  gossips along rows and columns — :class:`Grid`.
* Algorithm 5 partitions the passive processors into complete binary trees
  of size ``s = 2^λ − 1`` and activates subtrees top-down —
  :class:`BinaryTree` / :class:`TreeForest`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.errors import ConfigurationError
from repro.core.types import ProcessorId


def smallest_square_above(x: int) -> int:
    """The smallest perfect square strictly greater than *x*.

    Algorithm 5 sets the number of active processors to ``α``, *"the
    smallest quadratic number bigger than 6t"*.
    """
    root = math.isqrt(x)
    candidate = root * root
    while candidate <= x:
        root += 1
        candidate = root * root
    return candidate


# --------------------------------------------------------------------------
# Algorithm 1's relay graph
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BipartiteRelayGraph:
    """The graph ``G`` of Algorithm 1 for ``n = 2t + 1`` processors.

    Nodes: the transmitter ``q = 0`` plus ``A = {1..t}`` and
    ``B = {t+1..2t}``.  Edges: the complete bipartite graph between ``A``
    and ``B``, plus an edge from ``q`` to every other node.  A *correct
    1-message* received by ``p`` at phase ``k`` must be signed by a sequence
    of processors that, together with ``p``, forms a simple path of length
    ``k`` from ``q`` to ``p`` in ``G``.
    """

    t: int

    def __post_init__(self) -> None:
        if self.t < 1:
            raise ConfigurationError("relay graph needs t >= 1")

    @property
    def n(self) -> int:
        return 2 * self.t + 1

    @property
    def side_a(self) -> range:
        """The first half of the non-transmitter processors."""
        return range(1, self.t + 1)

    @property
    def side_b(self) -> range:
        """The second half of the non-transmitter processors."""
        return range(self.t + 1, 2 * self.t + 1)

    def side_of(self, pid: ProcessorId) -> str:
        """``'A'`` or ``'B'`` for a non-transmitter processor."""
        if pid in self.side_a:
            return "A"
        if pid in self.side_b:
            return "B"
        raise ValueError(f"processor {pid} is the transmitter or out of range")

    def opposite_side(self, pid: ProcessorId) -> range:
        """The side a relay in *pid*'s position forwards to."""
        return self.side_b if self.side_of(pid) == "A" else self.side_a

    def has_edge(self, u: ProcessorId, v: ProcessorId) -> bool:
        """True iff ``{u, v}`` is an edge of ``G``."""
        if u == v:
            return False
        if u == 0 or v == 0:
            return 0 <= u < self.n and 0 <= v < self.n
        return self.side_of(u) != self.side_of(v)

    def is_simple_path_from_transmitter(self, path: Sequence[ProcessorId]) -> bool:
        """True iff *path* is a simple path in ``G`` starting at the transmitter.

        *path* includes the transmitter as its first element; a correct
        1-message received by ``p`` at phase ``k`` corresponds to the path
        ``(0, signer_1, ..., signer_k = previous hop, p)`` — callers append
        the receiver before calling.
        """
        if not path or path[0] != 0:
            return False
        if len(set(path)) != len(path):
            return False
        return all(self.has_edge(u, v) for u, v in zip(path, path[1:]))


# --------------------------------------------------------------------------
# Algorithm 4's grid
# --------------------------------------------------------------------------


class Grid:
    """An ``m × m`` arrangement of processor ids for Algorithm 4.

    The paper denotes processors ``p(i, j)`` with ``1 ≤ i, j ≤ m``; here
    rows and columns are 0-based and the grid maps coordinates onto an
    arbitrary id list (so the same code serves standalone Algorithm 4 runs
    and the active-processor gossip inside Algorithm 5).
    """

    def __init__(self, members: Sequence[ProcessorId]) -> None:
        m = math.isqrt(len(members))
        if m * m != len(members) or m < 1:
            raise ConfigurationError(
                f"grid needs a perfect-square member count, got {len(members)}"
            )
        self.m = m
        self.members = tuple(members)
        self._position = {pid: divmod(idx, m) for idx, pid in enumerate(members)}
        if len(self._position) != len(members):
            raise ConfigurationError("grid members must be distinct")

    @property
    def size(self) -> int:
        """Total number of processors ``N = m²``."""
        return self.m * self.m

    def at(self, row: int, col: int) -> ProcessorId:
        """The processor at 0-based ``(row, col)``."""
        return self.members[row * self.m + col]

    def position(self, pid: ProcessorId) -> tuple[int, int]:
        """0-based ``(row, col)`` of *pid*."""
        return self._position[pid]

    def row_of(self, pid: ProcessorId) -> list[ProcessorId]:
        """All members of *pid*'s row (including *pid*), column order."""
        row, _ = self._position[pid]
        return [self.at(row, col) for col in range(self.m)]

    def column_of(self, pid: ProcessorId) -> list[ProcessorId]:
        """All members of *pid*'s column (including *pid*), row order."""
        _, col = self._position[pid]
        return [self.at(row, col) for row in range(self.m)]

    def __contains__(self, pid: ProcessorId) -> bool:
        return pid in self._position


# --------------------------------------------------------------------------
# Algorithm 5's binary trees
# --------------------------------------------------------------------------


class BinaryTree:
    """A complete binary tree over a member list, heap-ordered.

    Nodes are addressed by 1-based heap indices (node ``i`` has children
    ``2i`` and ``2i + 1``); ``members[i - 1]`` is the processor at index
    ``i``.  A full tree has ``s = 2^λ − 1`` members (``λ`` levels).  A
    *truncated* tree (the remainder group of a forest) simply lacks trailing
    heap indices; all operations skip missing nodes — DESIGN.md §5.2
    documents this resolution of the paper's even-division assumption.

    A *depth-x subtree* is the subtree rooted at a node ``λ − x`` levels
    below the root: it contains every descendant down to the leaves of the
    original tree, matching the paper's restriction to *"subtrees whose
    leaves are the leaves of the original binary tree"*.
    """

    def __init__(self, members: Sequence[ProcessorId]) -> None:
        if not members:
            raise ConfigurationError("a tree needs at least one member")
        self.members = tuple(members)
        self.size = len(members)
        #: number of levels λ of the (possibly truncated) tree.
        self.levels = self.size.bit_length()

    @staticmethod
    def full_size(levels: int) -> int:
        """``l(x) = 2^x − 1``, the size of a full tree with *levels* levels."""
        return (1 << levels) - 1

    # ------------------------------------------------------------ structure

    def processor_at(self, index: int) -> ProcessorId:
        """Processor at heap index *index* (1-based)."""
        return self.members[index - 1]

    def index_of(self, pid: ProcessorId) -> int:
        """Heap index of *pid* within this tree."""
        return self.members.index(pid) + 1

    def exists(self, index: int) -> bool:
        """True iff heap index *index* is present (not truncated away)."""
        return 1 <= index <= self.size

    def level_of_index(self, index: int) -> int:
        """Level of a heap index (root = level 1)."""
        return index.bit_length()

    def children(self, index: int) -> list[int]:
        """Existing child indices of *index*."""
        return [c for c in (2 * index, 2 * index + 1) if self.exists(c)]

    def subtree_depth(self, index: int) -> int:
        """Levels of the subtree rooted at *index* (``λ − level + 1``)."""
        return self.levels - self.level_of_index(index) + 1

    def subtree_indices(self, index: int) -> list[int]:
        """Heap indices of the subtree rooted at *index*, BFS order."""
        if not self.exists(index):
            return []
        order: list[int] = []
        frontier = [index]
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            frontier.extend(self.children(node))
        return order

    def subtree_members(self, index: int) -> list[ProcessorId]:
        """Processors of the subtree rooted at *index*, BFS order (root first)."""
        return [self.processor_at(i) for i in self.subtree_indices(index)]

    def roots_at_depth(self, x: int) -> list[int]:
        """Heap indices of the nodes that root depth-*x* subtrees.

        For ``x = λ`` this is just the root; for smaller ``x`` it is every
        existing node at level ``λ − x + 1``.
        """
        level = self.levels - x + 1
        if level < 1:
            return []
        lo, hi = 1 << (level - 1), (1 << level) - 1
        return [i for i in range(lo, hi + 1) if self.exists(i)]

    def root(self) -> ProcessorId:
        """The processor at the root of the whole tree."""
        return self.processor_at(1)


class TreeForest:
    """Partition of the passive processors into binary trees of size *s*.

    The first ``⌊m / s⌋`` trees are full; a non-empty remainder forms one
    final truncated tree.
    """

    def __init__(self, passive: Sequence[ProcessorId], s: int) -> None:
        if s < 1:
            raise ConfigurationError(f"tree size must be positive, got s={s}")
        self.s = s
        self.trees: list[BinaryTree] = []
        self._tree_of: dict[ProcessorId, BinaryTree] = {}
        for start in range(0, len(passive), s):
            tree = BinaryTree(passive[start : start + s])
            self.trees.append(tree)
            for pid in tree.members:
                self._tree_of[pid] = tree

    @property
    def max_levels(self) -> int:
        """λ of the full trees (the block count of Algorithm 5)."""
        return max((tree.levels for tree in self.trees), default=0)

    def tree_of(self, pid: ProcessorId) -> BinaryTree:
        """The tree containing passive processor *pid*."""
        return self._tree_of[pid]

    def all_passive(self) -> Iterator[ProcessorId]:
        for tree in self.trees:
            yield from tree.members
