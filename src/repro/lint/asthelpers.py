"""Shared AST analysis helpers for the repro lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import SourceFile

#: Builtins whose result does not depend on the order their iterable
#: argument is consumed in (or that impose an order themselves).
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
)

_SET_TYPE_NAMES = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})


def constant_str(node: ast.expr | None) -> str | None:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def constant_bool(node: ast.expr | None) -> bool | None:
    """The value of a bool-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return node.value
    return None


def call_name(node: ast.expr) -> str | None:
    """The bare callable name of a ``Call`` node (``f(...)`` or ``x.f(...)``)."""
    if not isinstance(node, ast.Call):
        return None
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def is_set_producing(node: ast.expr) -> bool:
    """Whether *node* syntactically evaluates to a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


def annotation_is_set(node: ast.expr | None) -> bool:
    """Whether a type annotation names ``set``/``frozenset`` (bare or
    subscripted)."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_TYPE_NAMES
    if isinstance(node, ast.Subscript):
        return annotation_is_set(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_TYPE_NAMES
    return False


def set_valued_self_attributes(class_node: ast.ClassDef) -> set[str]:
    """Attribute names the class assigns set-producing values to
    (``self.x = set(...)`` or ``self.x: set[...] = ...``)."""
    names: set[str] = set()
    for node in ast.walk(class_node):
        if isinstance(node, ast.Assign):
            targets, value, annotation = node.targets, node.value, None
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value, annotation = node.value, node.annotation
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if (value is not None and is_set_producing(value)) or (
                    annotation_is_set(annotation)
                ):
                    names.add(target.attr)
    return names


def set_valued_locals(function_node: ast.AST) -> set[str]:
    """Local variable names assigned set-producing values in a function.

    Covers plain assignments, annotated assignments, walrus targets
    (``(x := set())``) and augmented assignments whose right-hand side is
    set-producing (``x |= {…}`` implies ``x`` already holds a set).
    """
    names: set[str] = set()
    for node in ast.walk(function_node):
        if isinstance(node, ast.Assign) and is_set_producing(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if (node.value is not None and is_set_producing(node.value)) or (
                annotation_is_set(node.annotation)
            ):
                names.add(node.target.id)
        elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            if is_set_producing(node.value):
                names.add(node.target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            if is_set_producing(node.value):
                names.add(node.target.id)
    return names


def comprehension_is_order_insensitive(
    file: SourceFile, owner: ast.expr
) -> bool:
    """Whether a comprehension's iteration order cannot leak into program
    behaviour: it builds an unordered container, or it feeds directly into
    an order-insensitive call like ``sorted``/``sum``/``any``.
    """
    if isinstance(owner, ast.SetComp):
        return True
    parent = file.parents.get(owner)
    if isinstance(parent, ast.Call):
        name = call_name(parent)
        if name in ORDER_INSENSITIVE_CALLS and owner in parent.args:
            return True
    return False


def iteration_sites(file: SourceFile) -> Iterator[tuple[ast.expr, ast.expr | None]]:
    """Every ``(iterated expression, comprehension owner)`` pair in the file.

    For plain ``for`` statements the owner is ``None``; for comprehensions
    it is the ``ListComp``/``SetComp``/``DictComp``/``GeneratorExp`` node,
    so callers can apply :func:`comprehension_is_order_insensitive`.
    """
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, None
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter, node


def enclosing_class(file: SourceFile, node: ast.AST) -> ast.ClassDef | None:
    """The innermost class definition lexically containing *node*."""
    current = file.parents.get(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = file.parents.get(current)
    return None


def enclosing_function(file: SourceFile, node: ast.AST) -> ast.AST | None:
    """The innermost function definition lexically containing *node*."""
    current = file.parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return current
        current = file.parents.get(current)
    return None
