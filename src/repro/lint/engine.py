"""Lint engine: file collection, parsing, rule dispatch, suppression.

The engine is deliberately independent of the rules it runs: rules register
themselves via :func:`register` (the modules in :mod:`repro.lint.rules` do
so on import) and receive parsed :class:`SourceFile` objects plus a
cross-file :class:`ProjectIndex`.  Findings carry a rule id and a
``file:line:column`` location; ``# noqa`` / ``# noqa: BA001`` trailing
comments suppress them line by line.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Sequence

#: Rule id used for files that do not parse at all.
PARSE_RULE_ID = "BA000"

#: Rule id for ``# noqa: BA00x`` comments that suppress nothing.
UNUSED_SUPPRESSION_RULE_ID = "BA100"

_NOQA_PATTERN = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*))?",
    re.IGNORECASE,
)

#: Suppression codes owned by this linter; foreign codes (``F401`` …) are
#: left alone by the unused-suppression check.
_OWN_CODE_PATTERN = re.compile(r"^BA\d+$")


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation, anchored to a source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    severity: str = "error"

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "severity": self.severity,
        }


@dataclass(frozen=True, slots=True)
class Suppression:
    """One ``# noqa`` comment: the codes it names and where it starts."""

    #: Normalized (upper-case) rule ids, or ``None`` for a blanket ``# noqa``.
    codes: frozenset[str] | None
    column: int


@dataclass(slots=True)
class SourceFile:
    """A parsed source file plus the context rules need to scope checks."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    #: line -> the suppression comment found on that line.
    suppressions: dict[int, Suppression]
    #: child AST node -> parent, for enclosing-context checks.
    parents: dict[ast.AST, ast.AST]

    @property
    def in_algorithms(self) -> bool:
        return "algorithms" in self.path.parts

    @property
    def in_crypto(self) -> bool:
        return "crypto" in self.path.parts

    @property
    def in_approx(self) -> bool:
        return "approx" in self.path.parts

    @property
    def is_core_protocol(self) -> bool:
        return self.path.name == "protocol.py" and self.path.parent.name == "core"

    @property
    def protocol_code(self) -> bool:
        """True for the files the determinism discipline applies to:
        ``algorithms/``, ``approx/``, ``core/protocol.py`` and ``crypto/``.

        The approximate/randomized workloads are held to the same standard:
        their only entropy is the seeded
        :class:`~repro.approx.coins.CoinSource`, never ``random``/``time``.
        """
        return (
            self.in_algorithms
            or self.in_approx
            or self.in_crypto
            or self.is_core_protocol
        )

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.display,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )

    def suppressed(self, finding: Finding) -> bool:
        entry = self.suppressions.get(finding.line)
        if entry is None:
            return False
        # Codes are normalized to upper case on both sides so a lower-case
        # suppression code (ba003) works the same as its canonical form.
        return entry.codes is None or finding.rule.upper() in entry.codes


@dataclass(frozen=True, slots=True)
class ClassRecord:
    """A class definition as seen by the cross-file index."""

    name: str
    display: str
    lineno: int
    column: int
    bases: tuple[str, ...]
    #: simple ``name = value`` / annotated assignments in the class body.
    attributes: dict[str, ast.expr]


@dataclass(slots=True)
class ProjectIndex:
    """Cross-file facts: every class definition, and which of them are
    (transitively) ``AgreementAlgorithm`` subclasses."""

    classes: dict[str, ClassRecord] = field(default_factory=dict)
    algorithm_classes: dict[str, ClassRecord] = field(default_factory=dict)
    #: Every parsed file of the run, for whole-program analyses.
    files: list[SourceFile] = field(default_factory=list)
    #: Memoized per-run artifacts (e.g. the protocol call graph) keyed by
    #: analysis name, so expensive whole-program passes build them once.
    caches: dict[str, object] = field(default_factory=dict)

    def resolve_class_attribute(
        self, record: ClassRecord, attribute: str
    ) -> ast.expr | None:
        """Look *attribute* up along the statically-known base chain."""
        seen: set[str] = set()
        queue = [record]
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            if attribute in current.attributes:
                return current.attributes[attribute]
            for base in current.bases:
                if base in self.classes:
                    queue.append(self.classes[base])
        return None


class Rule(abc.ABC):
    """One lint rule.  Subclasses set ``rule_id``/``summary`` and implement
    :meth:`check`; registration happens via the :func:`register` decorator."""

    rule_id: ClassVar[str]
    summary: ClassVar[str]

    def applies(self, file: SourceFile) -> bool:
        """Whether this rule runs on *file* at all (default: every file)."""
        return True

    @abc.abstractmethod
    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        """Yield findings for *file*."""


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> dict[str, type[Rule]]:
    """The registered rules, importing the built-in set on first use."""
    import repro.lint.rules  # noqa: F401  (registers on import)

    return dict(_REGISTRY)


@dataclass(slots=True)
class LintReport:
    """Outcome of one lint run."""

    findings: list[Finding]
    files_checked: int
    rules_run: list[str]

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _collect_files(paths: Sequence[Path | str]) -> list[tuple[Path, str]]:
    """Expand *paths* into a sorted, de-duplicated list of python files."""
    collected: dict[Path, str] = {}
    for raw in paths:
        given = Path(raw)
        if given.is_dir():
            for found in sorted(given.rglob("*.py")):
                collected.setdefault(found.resolve(), str(found))
        elif given.suffix == ".py":
            collected.setdefault(given.resolve(), str(given))
    return sorted(collected.items(), key=lambda item: item[1])


def _scan_suppressions(source: str) -> dict[int, Suppression]:
    suppressions: dict[int, Suppression] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_PATTERN.search(line)
        if not match:
            continue
        codes = match.group("codes")
        parsed = (
            None
            if codes is None
            else frozenset(code.strip().upper() for code in codes.split(","))
        )
        suppressions[lineno] = Suppression(codes=parsed, column=match.start() + 1)
    return suppressions


def _build_parents(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _base_names(node: ast.ClassDef) -> tuple[str, ...]:
    names: list[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def _class_attributes(node: ast.ClassDef) -> dict[str, ast.expr]:
    attributes: dict[str, ast.expr] = {}
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    attributes[target.id] = statement.value
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name) and statement.value is not None:
                attributes[statement.target.id] = statement.value
    return attributes


def _build_index(files: Iterable[SourceFile]) -> ProjectIndex:
    index = ProjectIndex()
    bases_of: dict[str, tuple[str, ...]] = {}
    for file in files:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            record = ClassRecord(
                name=node.name,
                display=file.display,
                lineno=node.lineno,
                column=node.col_offset + 1,
                bases=_base_names(node),
                attributes=_class_attributes(node),
            )
            index.classes[node.name] = record
            bases_of[node.name] = record.bases
    # Fixpoint: a class is an algorithm class when any statically-visible
    # base is AgreementAlgorithm or another algorithm class.
    algorithmic: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, bases in bases_of.items():
            if name in algorithmic:
                continue
            if any(base == "AgreementAlgorithm" or base in algorithmic for base in bases):
                algorithmic.add(name)
                changed = True
    index.algorithm_classes = {
        name: index.classes[name] for name in sorted(algorithmic)
    }
    return index


class LintEngine:
    """Collect files, parse them, run every applicable rule."""

    def __init__(self, rules: Sequence[type[Rule]] | None = None) -> None:
        if rules is None:
            rules = list(all_rules().values())
        self.rules = [rule_class() for rule_class in rules]

    def run(self, paths: Sequence[Path | str]) -> LintReport:
        findings: list[Finding] = []
        sources: list[SourceFile] = []
        for path, display in _collect_files(paths):
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as error:
                line = getattr(error, "lineno", 1) or 1
                findings.append(
                    Finding(
                        path=display,
                        line=line,
                        column=1,
                        rule=PARSE_RULE_ID,
                        message=f"file does not parse: {error}",
                    )
                )
                continue
            sources.append(
                SourceFile(
                    path=path,
                    display=display,
                    source=source,
                    tree=tree,
                    suppressions=_scan_suppressions(source),
                    parents=_build_parents(tree),
                )
            )
        project = _build_index(sources)
        project.files = list(sources)
        ran = frozenset(rule.rule_id.upper() for rule in self.rules)
        for file in sources:
            used: dict[int, set[str]] = {}
            for rule in self.rules:
                if not rule.applies(file):
                    continue
                for finding in rule.check(file, project):
                    if file.suppressed(finding):
                        used.setdefault(finding.line, set()).add(
                            finding.rule.upper()
                        )
                    else:
                        findings.append(finding)
            findings.extend(
                notice
                for notice in self._unused_suppressions(file, used, ran)
                if not file.suppressed(notice)
            )
        return LintReport(
            findings=sorted(findings),
            files_checked=len(sources),
            rules_run=sorted(rule.rule_id for rule in self.rules),
        )

    def _unused_suppressions(
        self,
        file: SourceFile,
        used: dict[int, set[str]],
        ran: frozenset[str],
    ) -> Iterator[Finding]:
        """BA100 notices for ``# noqa: BA00x`` comments that suppressed
        nothing.  Blanket ``# noqa`` comments and foreign codes (``F401``,
        ``S307`` …) are left alone, and a code only counts as stale when
        its rule actually ran."""
        for line, entry in sorted(file.suppressions.items()):
            if entry.codes is None:
                continue
            stale = sorted(
                code
                for code in entry.codes
                if _OWN_CODE_PATTERN.match(code)
                and code in ran
                and code not in used.get(line, set())
            )
            if stale:
                yield Finding(
                    path=file.display,
                    line=line,
                    column=entry.column,
                    rule=UNUSED_SUPPRESSION_RULE_ID,
                    message=(
                        f"unused suppression: no {', '.join(stale)} finding "
                        f"on this line; remove the stale '# noqa' code"
                    ),
                    severity="note",
                )


def lint_paths(
    paths: Sequence[Path | str], rules: Sequence[type[Rule]] | None = None
) -> LintReport:
    """Convenience wrapper: lint *paths* with the given (or all) rules."""
    return LintEngine(rules).run(paths)
