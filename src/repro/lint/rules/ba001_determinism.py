"""BA001: no nondeterminism in protocol code.

Paper invariant: a correctness rule ``R_p`` is a *function* of the
individual subhistory — two runs from the same history must send the same
messages, otherwise the conformance replay (and every bound stated over
histories) is meaningless.  Protocol code (``algorithms/``,
``core/protocol.py``, ``crypto/``) must therefore not consult entropy or
wall-clock sources, and must not let unordered ``set`` iteration decide
what gets sent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import (
    comprehension_is_order_insensitive,
    enclosing_class,
    enclosing_function,
    iteration_sites,
    set_valued_locals,
    set_valued_self_attributes,
)
from repro.lint.engine import Finding, ProjectIndex, Rule, SourceFile, register

#: Modules whose very import marks nondeterminism or wall-clock dependence.
BANNED_MODULES = frozenset({"random", "secrets", "uuid", "time", "datetime"})

#: Calls that inject entropy or process-local state.
BANNED_CALLS = frozenset({"urandom", "getrandbits", "token_bytes", "token_hex"})


@register
class DeterminismRule(Rule):
    """BA001: no entropy, clocks, or unordered-set fan-out in protocol code."""

    rule_id = "BA001"
    summary = "protocol code must be deterministic"

    def applies(self, file: SourceFile) -> bool:
        return file.protocol_code

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        yield from self._check_imports(file)
        yield from self._check_calls(file)
        yield from self._check_set_iteration(file)

    # ------------------------------------------------------------- imports

    def _check_imports(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        yield file.finding(
                            node,
                            self.rule_id,
                            f"import of nondeterministic module {root!r} in "
                            f"protocol code (correctness rules must be "
                            f"functions of the subhistory)",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in BANNED_MODULES:
                    yield file.finding(
                        node,
                        self.rule_id,
                        f"import from nondeterministic module {root!r} in "
                        f"protocol code",
                    )
                elif root == "os" and any(
                    alias.name == "urandom" for alias in node.names
                ):
                    yield file.finding(
                        node, self.rule_id, "import of os.urandom in protocol code"
                    )

    # --------------------------------------------------------------- calls

    def _check_calls(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in BANNED_CALLS:
                    yield file.finding(
                        node,
                        self.rule_id,
                        f"call to entropy source .{node.func.attr}() in "
                        f"protocol code",
                    )
            elif isinstance(node.func, ast.Name):
                if node.func.id in BANNED_CALLS:
                    yield file.finding(
                        node,
                        self.rule_id,
                        f"call to entropy source {node.func.id}() in protocol code",
                    )
                elif node.func.id == "hash":
                    yield file.finding(
                        node,
                        self.rule_id,
                        "builtin hash() is salted per process; use "
                        "repro.core.message.payload_digest for stable digests",
                    )

    # ------------------------------------------------------- set iteration

    def _check_set_iteration(self, file: SourceFile) -> Iterator[Finding]:
        for iterated, owner in iteration_sites(file):
            if not self._is_set_valued(file, iterated):
                continue
            if owner is not None and comprehension_is_order_insensitive(
                file, owner
            ):
                continue
            yield file.finding(
                iterated,
                self.rule_id,
                "iteration over an unordered set in protocol code; wrap in "
                "sorted(...) so emission order is canonical",
            )

    def _is_set_valued(self, file: SourceFile, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return True
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            class_node = enclosing_class(file, node)
            if class_node is not None:
                return node.attr in set_valued_self_attributes(class_node)
        if isinstance(node, ast.Name):
            function_node = enclosing_function(file, node)
            if function_node is not None:
                return node.id in set_valued_locals(function_node)
        return False
