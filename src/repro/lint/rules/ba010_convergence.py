"""BA010: approximate-agreement algorithms declare their contraction rate.

Paper invariant: the Dolev-Reischuk accounting prices a protocol by its
declared budgets; the ε-agreement workloads extend that discipline to
*convergence* — each round must shrink the correct-value diameter by a
declared factor, and the round budget ``m`` is derived from it.  An
approximate algorithm without a stated rate has an unpriceable round
budget, exactly like an exact algorithm without a message bound.

The rule: every (transitive) subclass of ``ApproximateAgreement`` must
assign ``convergence_rate`` in its *own* class body, as a string literal
in the bound-expression language, and the expression must evaluate to a
ratio strictly inside ``(0, 1)`` at every point of the shared sample grid
— a "rate" of ``1`` (no contraction) or ``3/2`` (divergence) is a typo
the type system cannot catch but this rule can.

Note the rule checks the *declaration*, not the implementation; the fuzz
oracle's ``eps_violation`` verdict and the statistical harness check the
implementation against it (``strawman-overshoot`` declares an honest
``1 / 2`` and fails the oracle, not this rule).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.bounds.expressions import (
    SAMPLE_GRID,
    BoundExpressionError,
    evaluate_rate,
)
from repro.lint.asthelpers import constant_str
from repro.lint.engine import (
    ClassRecord,
    Finding,
    ProjectIndex,
    Rule,
    SourceFile,
    register,
)

#: The root of the approximate family; the root itself is exempt (it is
#: the abstract contract, with no rate of its own).
_APPROX_ROOT = "ApproximateAgreement"


def _is_approx_subclass(record: ClassRecord, project: ProjectIndex) -> bool:
    """Whether *record* transitively subclasses ``ApproximateAgreement``."""
    seen: set[str] = set()
    queue = list(record.bases)
    while queue:
        base = queue.pop(0)
        if base in seen:
            continue
        seen.add(base)
        if base == _APPROX_ROOT:
            return True
        parent = project.classes.get(base)
        if parent is not None:
            queue.extend(parent.bases)
    return False


@register
class ConvergenceRateRule(Rule):
    """BA010: ε-agreement algorithms declare a contraction rate in (0, 1)."""

    rule_id = "BA010"
    summary = "approximate algorithms must declare a convergence rate in (0, 1)"

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            # The full class index, not just algorithm_classes: a subclass
            # naming ``ApproximateAgreement`` as a base is in scope even
            # when the abstract root itself is outside the linted paths.
            record = project.classes.get(node.name)
            if record is None or record.display != file.display:
                continue
            if node.name == _APPROX_ROOT:
                continue
            if not _is_approx_subclass(record, project):
                continue
            yield from self._check_class(file, node, record)

    def _check_class(
        self, file: SourceFile, node: ast.ClassDef, record: ClassRecord
    ) -> Iterator[Finding]:
        declaration_node = record.attributes.get("convergence_rate")
        if declaration_node is None:
            yield file.finding(
                node,
                self.rule_id,
                f"approximate algorithm {node.name!r} does not declare "
                f"'convergence_rate' in its own body (the per-round "
                f"diameter contraction its round budget is derived from)",
            )
            return
        declaration = constant_str(declaration_node)
        if declaration is None:
            yield file.finding(
                declaration_node,
                self.rule_id,
                f"{node.name}.convergence_rate must be a string literal "
                f"bound expression (e.g. '1 / 2' or 't / (n - 2*t)')",
            )
            return
        for point in SAMPLE_GRID:
            try:
                rate = evaluate_rate(declaration, point)
            except (BoundExpressionError, ZeroDivisionError) as error:
                sample = ", ".join(
                    f"{name}={point[name]}" for name in ("n", "t")
                )
                yield file.finding(
                    declaration_node,
                    self.rule_id,
                    f"{node.name}.convergence_rate = {declaration!r} does "
                    f"not evaluate to a contraction at {sample}: {error}",
                )
                return
            if rate is None:
                # Sentinels ('derived'/'unstated') defeat the discipline
                # for a rate: the round budget is *computed* from it.
                yield file.finding(
                    declaration_node,
                    self.rule_id,
                    f"{node.name}.convergence_rate = {declaration!r} must "
                    f"be a concrete expression, not a sentinel — the round "
                    f"budget m is derived from the rate",
                )
                return
