"""BA003: all signing goes through the context's signature service.

Paper invariant: the signature budget (Theorems 4–6) counts signatures a
correct processor *generates*, and the model lets a processor sign only
with its own key.  The runner enforces both by handing each processor a
:class:`~repro.core.protocol.Context` whose ``sign`` method wraps the one
registry-backed :class:`~repro.crypto.signatures.SignatureService` per
run.  An algorithm module that constructs its own ``SignatureService`` or
``SigningKey`` escapes that accounting (signatures it mints are invisible
to the metrics ledger) and can forge other processors' keys.

Construction is allowed only via the audited factory
``SignatureService.fresh_registries`` (used by wrapper algorithms that run
component instances), never by calling the class directly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, ProjectIndex, Rule, SourceFile, register

#: Crypto types algorithm modules must not construct directly.
FORBIDDEN_CONSTRUCTORS = frozenset({"SignatureService", "SigningKey"})


@register
class SigningDisciplineRule(Rule):
    """BA003: signing goes through ``Context.sign``, never raw services."""

    rule_id = "BA003"
    summary = "algorithm modules must sign via Context.sign only"

    def applies(self, file: SourceFile) -> bool:
        return file.in_algorithms

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._constructed_type(node.func)
            if name is None:
                continue
            yield file.finding(
                node,
                self.rule_id,
                f"direct construction of {name} in an algorithm module; "
                f"sign through Context.sign (or obtain services via "
                f"SignatureService.fresh_registries) so the signature "
                f"budget stays accountable",
            )

    def _constructed_type(self, func: ast.expr) -> str | None:
        """The forbidden class name when *func* is a call to it.

        ``SignatureService()`` and ``crypto.SignatureService()`` are both
        flagged; ``SignatureService.fresh_registries()`` is not, because
        the called attribute is the factory, not the constructor.
        """
        if isinstance(func, ast.Name) and func.id in FORBIDDEN_CONSTRUCTORS:
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in FORBIDDEN_CONSTRUCTORS:
            return func.attr
        return None
