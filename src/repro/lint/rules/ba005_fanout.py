"""BA005: no bare dict-ordered fan-out in protocol hot paths.

Paper invariant: message counts are proved over *canonical* runs — when a
processor fans a message out to a set of peers, the bound does not depend
on which peer is served first, so the implementation must not either.
``dict`` preserves insertion order, and insertion order in a protocol
inbox is exactly the adversary-controlled delivery order; iterating
``.items()`` / ``.keys()`` / ``.values()`` bare in protocol code lets
that order leak into what gets emitted.  Wrap the iteration in
``sorted(...)`` (with an explicit ``key=`` when values are not
comparable), or keep it inside an order-insensitive reduction such as
``sum``/``any``/``max``/``set``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import (
    comprehension_is_order_insensitive,
    iteration_sites,
)
from repro.lint.engine import Finding, ProjectIndex, Rule, SourceFile, register

#: The dict views whose bare iteration order is insertion order.
DICT_VIEWS = frozenset({"items", "keys", "values"})


def _dict_view_call(node: ast.expr) -> str | None:
    """The view name when *node* is a bare ``<expr>.items()``-style call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in DICT_VIEWS
        and not node.args
        and not node.keywords
    ):
        return node.func.attr
    return None


@register
class DictFanoutRule(Rule):
    """BA005: dict-view fan-out in protocol code is sorted or order-insensitive."""

    rule_id = "BA005"
    summary = "dict fan-out must be sorted or order-insensitive"

    def applies(self, file: SourceFile) -> bool:
        return file.protocol_code

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        for iterated, owner in iteration_sites(file):
            view = _dict_view_call(iterated)
            if view is None:
                continue
            if owner is not None and comprehension_is_order_insensitive(
                file, owner
            ):
                continue
            yield file.finding(
                iterated,
                self.rule_id,
                f"bare iteration over .{view}() in protocol code exposes "
                f"insertion (delivery) order; wrap in sorted(...) or an "
                f"order-insensitive reduction",
            )
