"""The built-in repro lint rules.  Importing this package registers them."""

from repro.lint.rules.ba001_determinism import DeterminismRule
from repro.lint.rules.ba002_bounds import BoundDeclarationRule
from repro.lint.rules.ba003_signing import SigningDisciplineRule
from repro.lint.rules.ba004_envelope import EnvelopeImmutabilityRule
from repro.lint.rules.ba005_fanout import DictFanoutRule

__all__ = [
    "DeterminismRule",
    "BoundDeclarationRule",
    "SigningDisciplineRule",
    "EnvelopeImmutabilityRule",
    "DictFanoutRule",
]
