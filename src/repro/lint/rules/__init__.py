"""The built-in repro lint rules.  Importing this package registers them.

BA001-BA005 and BA010 are per-file syntactic rules; BA006-BA009 live in
:mod:`repro.lint.analysis` and reason over the whole program through the
protocol call graph.
"""

from repro.lint.analysis.ba006_messages import MessageBudgetRule
from repro.lint.analysis.ba007_signatures import SignatureBudgetRule
from repro.lint.analysis.ba008_taint import UnverifiedRelayRule
from repro.lint.analysis.ba009_shared_state import SharedStateRule
from repro.lint.rules.ba001_determinism import DeterminismRule
from repro.lint.rules.ba002_bounds import BoundDeclarationRule
from repro.lint.rules.ba003_signing import SigningDisciplineRule
from repro.lint.rules.ba004_envelope import EnvelopeImmutabilityRule
from repro.lint.rules.ba005_fanout import DictFanoutRule
from repro.lint.rules.ba010_convergence import ConvergenceRateRule

__all__ = [
    "DeterminismRule",
    "BoundDeclarationRule",
    "SigningDisciplineRule",
    "EnvelopeImmutabilityRule",
    "DictFanoutRule",
    "ConvergenceRateRule",
    "MessageBudgetRule",
    "SignatureBudgetRule",
    "UnverifiedRelayRule",
    "SharedStateRule",
]
