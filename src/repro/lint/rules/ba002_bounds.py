"""BA002: every algorithm declares its paper bounds, and they match.

Paper invariant: the whole point of Dolev & Reischuk's accounting is that
each protocol comes with explicit budgets — phases, messages, and (for
authenticated protocols) signatures.  Every concrete
``AgreementAlgorithm`` subclass must therefore declare ``phase_bound`` and
``message_bound`` (plus ``signature_bound`` when ``authenticated``) in its
own class body, as expression strings of the bound language in
:mod:`repro.bounds.expressions` — or the explicit sentinels ``"derived"``
/ ``"unstated"``.

Where the paper states a closed form, the declaration is additionally
cross-checked *numerically* against the canonical formula from
:mod:`repro.bounds.formulas` over a grid of sample parameters, so a typo
like ``2*t*t + 3*t`` where Theorem 3 says ``2*t*t + 2*t`` is caught
statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.bounds.expressions import (
    SAMPLE_GRID,
    SENTINELS,
    BoundExpressionError,
    evaluate_bound,
    validate_bound_expression,
)
from repro.lint.asthelpers import constant_bool, constant_str
from repro.lint.engine import (
    ClassRecord,
    Finding,
    ProjectIndex,
    Rule,
    SourceFile,
    register,
)

#: Canonical closed forms from the paper, keyed by the algorithm's
#: registry ``name``.  Only bounds the paper actually states appear here;
#: ``"derived"``/``"unstated"`` declarations are never cross-checked.
PAPER_FORMS: Mapping[str, Mapping[str, str]] = {
    "algorithm-1": {
        "phase_bound": "theorem3_phases(t)",
        "message_bound": "theorem3_message_upper_bound(t)",
    },
    "algorithm-2": {
        "phase_bound": "theorem4_phases(t)",
        "message_bound": "theorem4_message_upper_bound(t)",
    },
    "algorithm-3": {
        "phase_bound": "lemma1_phases(t, s)",
        "message_bound": "lemma1_message_upper_bound(n, t, s)",
    },
    "algorithm-4": {
        "phase_bound": "3",
        "message_bound": "theorem6_message_upper_bound(m)",
    },
    "algorithm-5": {
        "phase_bound": "our_algorithm5_phase_bound(t, s)",
    },
    "informed-algorithm-2": {
        "phase_bound": "3*t + 4",
        "message_bound": "theorem4_message_upper_bound(t) + (t + 1) * (n - 2*t - 1)",
    },
}

@register
class BoundDeclarationRule(Rule):
    """BA002: concrete algorithms declare phase/message/signature budgets."""

    rule_id = "BA002"
    summary = "algorithms must declare paper bounds that match the closed forms"

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            record = project.algorithm_classes.get(node.name)
            if record is None or record.display != file.display:
                continue
            yield from self._check_class(file, node, record, project)

    def _check_class(
        self,
        file: SourceFile,
        node: ast.ClassDef,
        record: ClassRecord,
        project: ProjectIndex,
    ) -> Iterator[Finding]:
        required = ["phase_bound", "message_bound"]
        if self._is_authenticated(record, project):
            required.append("signature_bound")
        paper = PAPER_FORMS.get(self._registry_name(record, project) or "", {})
        for attribute in required:
            declaration_node = record.attributes.get(attribute)
            if declaration_node is None:
                yield file.finding(
                    node,
                    self.rule_id,
                    f"algorithm class {node.name!r} does not declare "
                    f"{attribute!r} in its own body",
                )
                continue
            declaration = constant_str(declaration_node)
            if declaration is None:
                yield file.finding(
                    declaration_node,
                    self.rule_id,
                    f"{node.name}.{attribute} must be a string literal "
                    f"(a bound expression, 'derived' or 'unstated')",
                )
                continue
            if declaration in SENTINELS:
                continue
            try:
                validate_bound_expression(declaration)
            except BoundExpressionError as error:
                yield file.finding(
                    declaration_node, self.rule_id, str(error)
                )
                continue
            canonical = paper.get(attribute)
            if canonical is not None:
                yield from self._cross_check(
                    file, declaration_node, node.name, attribute,
                    declaration, canonical,
                )

    def _cross_check(
        self,
        file: SourceFile,
        declaration_node: ast.expr,
        class_name: str,
        attribute: str,
        declaration: str,
        canonical: str,
    ) -> Iterator[Finding]:
        for point in SAMPLE_GRID:
            try:
                declared = evaluate_bound(declaration, point)
                expected = evaluate_bound(canonical, point)
            except BoundExpressionError as error:
                yield file.finding(declaration_node, self.rule_id, str(error))
                return
            if declared != expected:
                sample = ", ".join(
                    f"{name}={point[name]}" for name in ("n", "t", "s", "m")
                )
                yield file.finding(
                    declaration_node,
                    self.rule_id,
                    f"{class_name}.{attribute} = {declaration!r} disagrees "
                    f"with the paper's closed form {canonical!r} at "
                    f"{sample}: declared {declared}, paper says {expected}",
                )
                return

    def _registry_name(
        self, record: ClassRecord, project: ProjectIndex
    ) -> str | None:
        return constant_str(project.resolve_class_attribute(record, "name"))

    def _is_authenticated(
        self, record: ClassRecord, project: ProjectIndex
    ) -> bool:
        declared = constant_bool(
            project.resolve_class_attribute(record, "authenticated")
        )
        # AgreementAlgorithm defaults to authenticated=True.
        return True if declared is None else declared
