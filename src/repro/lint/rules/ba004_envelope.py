"""BA004: received envelopes are immutable history.

Paper invariant: the information exchange of a run is the *history* — the
set of messages actually sent.  Lower bounds (Theorems 1 and 2) are proved
by surgery on histories, and the conformance checker replays them; both
collapse if protocol code can rewrite a message after receipt.
:class:`~repro.core.message.Envelope` is a frozen dataclass for exactly
this reason, and this rule closes the loopholes Python leaves open:
``object.__setattr__`` and ``setattr`` on an envelope field, or plain
attribute assignment that would raise at runtime anyway.

Assignments to ``self.<field>`` are never flagged — processors naturally
keep attributes like ``self.phase`` for their own state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, ProjectIndex, Rule, SourceFile, register

#: The fields of repro.core.message.Envelope.
ENVELOPE_FIELDS = frozenset({"src", "dst", "phase", "payload"})


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _envelope_field_target(target: ast.expr) -> str | None:
    """The envelope field name when *target* is ``<obj>.<field>`` with
    ``obj`` not ``self`` and ``field`` an Envelope field."""
    if (
        isinstance(target, ast.Attribute)
        and target.attr in ENVELOPE_FIELDS
        and not _is_self(target.value)
    ):
        return target.attr
    return None


@register
class EnvelopeImmutabilityRule(Rule):
    """BA004: received envelopes are history — never mutated, even via loopholes."""

    rule_id = "BA004"
    summary = "never mutate a received Envelope"

    def applies(self, file: SourceFile) -> bool:
        return file.protocol_code

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_target(file, node, target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                yield from self._check_target(file, node, node.target)
            elif isinstance(node, ast.Call):
                yield from self._check_setattr(file, node)

    def _check_target(
        self, file: SourceFile, statement: ast.stmt, target: ast.expr
    ) -> Iterator[Finding]:
        field = _envelope_field_target(target)
        if field is not None:
            yield file.finding(
                statement,
                self.rule_id,
                f"assignment to .{field} of a non-self object looks like "
                f"envelope mutation; histories are immutable — build a new "
                f"Envelope instead",
            )

    def _check_setattr(self, file: SourceFile, node: ast.Call) -> Iterator[Finding]:
        # object.__setattr__(x, 'payload', v) — the frozen-dataclass bypass.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and len(node.args) >= 2
            and not _is_self(node.args[0])
        ):
            field = node.args[1]
            if isinstance(field, ast.Constant) and field.value in ENVELOPE_FIELDS:
                yield file.finding(
                    node,
                    self.rule_id,
                    f"object.__setattr__ on .{field.value} bypasses Envelope "
                    f"immutability; histories are append-only",
                )
        # setattr(x, 'payload', v) on a non-self object.
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id == "setattr"
            and len(node.args) >= 2
            and not _is_self(node.args[0])
        ):
            field = node.args[1]
            if isinstance(field, ast.Constant) and field.value in ENVELOPE_FIELDS:
                yield file.finding(
                    node,
                    self.rule_id,
                    f"setattr on .{field.value} of a non-self object looks "
                    f"like envelope mutation; build a new Envelope instead",
                )
