"""Rendering lint reports as text or JSON."""

from __future__ import annotations

import json

from repro.lint.engine import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``file:line:col rule message`` per line."""
    lines = [
        f"{finding.location} {finding.rule} {finding.message}"
        for finding in report.findings
    ]
    noun = "file" if report.files_checked == 1 else "files"
    if report.ok:
        lines.append(f"{report.files_checked} {noun} checked, no findings")
    else:
        count = len(report.findings)
        problems = "finding" if count == 1 else "findings"
        lines.append(f"{report.files_checked} {noun} checked, {count} {problems}")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for tooling and CI."""
    payload = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "rules_run": report.rules_run,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
