"""Rendering lint reports as text, JSON, or SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Collection

from repro.lint.engine import (
    PARSE_RULE_ID,
    UNUSED_SUPPRESSION_RULE_ID,
    Finding,
    LintReport,
    all_rules,
)

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Engine-level pseudo-rules that have no Rule class behind them.
ENGINE_RULES: dict[str, str] = {
    PARSE_RULE_ID: "file does not parse",
    UNUSED_SUPPRESSION_RULE_ID: "suppression comment matches no finding",
}

_ENGINE_RULE_DETAILS: dict[str, str] = {
    PARSE_RULE_ID: (
        "Emitted by the engine itself when a file cannot be parsed "
        "(syntax error, bad encoding, unreadable).  Nothing else can be "
        "checked in such a file, so the parse failure is the finding."
    ),
    UNUSED_SUPPRESSION_RULE_ID: (
        "A '# noqa: BA00x' comment names a rule that produced no finding "
        "on that line (the rule did run).  Stale suppressions hide future "
        "regressions; remove the code.  Blanket '# noqa' comments and "
        "foreign codes (F401, S307, ...) are never flagged.  Severity: "
        "note."
    ),
}


def explain_rule(rule_id: str) -> str | None:
    """Long-form documentation for one rule id, or ``None`` if unknown.

    Registered rules explain themselves through their defining module's
    docstring, which states the paper invariant the rule encodes.
    """
    import sys

    rule_id = rule_id.strip().upper()
    if rule_id in ENGINE_RULES:
        return (
            f"{rule_id}: {ENGINE_RULES[rule_id]}\n\n"
            f"{_ENGINE_RULE_DETAILS[rule_id]}"
        )
    rule_class = all_rules().get(rule_id)
    if rule_class is None:
        return None
    detail = (sys.modules[rule_class.__module__].__doc__ or "").strip()
    text = f"{rule_id}: {rule_class.summary}"
    return f"{text}\n\n{detail}" if detail else text


def render_text(report: LintReport) -> str:
    """Human-readable report: one ``file:line:col rule message`` per line."""
    lines = [
        f"{finding.location} {finding.rule} {finding.message}"
        for finding in report.findings
    ]
    noun = "file" if report.files_checked == 1 else "files"
    if report.ok:
        lines.append(f"{report.files_checked} {noun} checked, no findings")
    else:
        count = len(report.findings)
        problems = "finding" if count == 1 else "findings"
        lines.append(f"{report.files_checked} {noun} checked, {count} {problems}")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for tooling and CI."""
    payload = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "rules_run": report.rules_run,
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rules(report: LintReport) -> list[dict[str, object]]:
    descriptors: dict[str, str] = dict(ENGINE_RULES)
    for rule_id, rule_class in all_rules().items():
        descriptors[rule_id] = rule_class.summary
    for rule_id in report.rules_run:
        descriptors.setdefault(rule_id, rule_id)
    return [
        {
            "id": rule_id,
            "shortDescription": {"text": summary},
        }
        for rule_id, summary in sorted(descriptors.items())
    ]


def render_sarif(
    report: LintReport, baselined: Collection[Finding] = ()
) -> str:
    """The report as SARIF 2.1.0, for code-scanning UIs and CI upload.

    Findings in *baselined* are still emitted (the debt stays visible)
    but carry an external ``suppression``, which SARIF consumers treat
    as "known, not newly introduced".
    """
    suppressed = set(baselined)
    results = []
    for finding in report.findings:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "level": "note" if finding.severity == "note" else "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    }
                }
            ],
        }
        if finding in suppressed:
            result["suppressions"] = [{"kind": "external"}]
        results.append(result)
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": _sarif_rules(report),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
