"""BA008: unverified relayed payloads must not influence decisions.

Paper invariant: the Dolev-Reischuk lower-bound argument (and every
authenticated algorithm's correctness proof) hinges on a processor only
acting on relayed values whose signature chains it has *checked* — an
unverified payload is exactly the forgery the adversary is allowed to
inject.  In code terms: anything read off an inbox ``Envelope.payload``
is tainted until it flows through a verification step, and a tainted
value must never reach the state the processor's ``decision()`` reads
(nor a ``decide(...)`` call).

Mechanics: a method counts as *verifying* when it — directly or through
resolved callees — invokes anything named ``verify`` or
``is_input_edge`` (the trusted phase-0 input edge); verifying methods
are trusted wholesale, which keeps the rule quiet on the real tree where
validation helpers both check and store.  In non-verifying methods the
analysis propagates taint from ``.payload`` reads through local
assignments and loop targets, and flags stores into decision-feeding
``self`` attributes, mutating calls on them (``.append`` etc.), calls to
``decide``, and calls passing a tainted argument to a sibling method
that is known to store that parameter into decision state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.analysis.callgraph import (
    FunctionRecord,
    ProtocolGraph,
    protocol_graph,
)
from repro.lint.engine import Finding, ProjectIndex, Rule, SourceFile, register

#: Callee names whose invocation marks a method as a verification step.
VERIFY_MARKERS = frozenset({"verify", "is_input_edge"})

#: container mutators through which a tainted value can enter state.
_MUTATORS = frozenset({"append", "add", "extend", "insert", "update", "setdefault"})

_VERIFYING_CACHE_KEY = "ba008-verifying-functions"


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _expr_tainted(
    expr: ast.expr, tainted: set[str], *, payload_is_source: bool = True
) -> bool:
    for node in ast.walk(expr):
        if (
            payload_is_source
            and isinstance(node, ast.Attribute)
            and node.attr == "payload"
        ):
            return True
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in tainted
        ):
            return True
    return False


def _add_target(target: ast.expr, tainted: set[str]) -> None:
    if isinstance(target, ast.Name):
        tainted.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _add_target(element, tainted)
    elif isinstance(target, ast.Starred):
        _add_target(target.value, tainted)


def tainted_names(
    method: ast.AST,
    seed: frozenset[str],
    *,
    payload_is_source: bool = True,
) -> set[str]:
    """Names holding payload-derived (or *seed*-derived) values.

    Two sweeps over the body approximate a fixpoint through loops.  With
    ``payload_is_source=False`` only *seed* names propagate, which is how
    per-parameter summaries stay attributable to one parameter.
    """
    tainted: set[str] = set(seed)
    for _ in range(2):
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                if _expr_tainted(
                    node.value, tainted, payload_is_source=payload_is_source
                ):
                    for target in node.targets:
                        _add_target(target, tainted)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if node.value is not None and _expr_tainted(
                    node.value, tainted, payload_is_source=payload_is_source
                ):
                    _add_target(node.target, tainted)
            elif isinstance(node, ast.NamedExpr):
                if _expr_tainted(
                    node.value, tainted, payload_is_source=payload_is_source
                ):
                    _add_target(node.target, tainted)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _expr_tainted(
                    node.iter, tainted, payload_is_source=payload_is_source
                ):
                    _add_target(node.target, tainted)
    return tainted


def decision_attributes(graph: ProtocolGraph, class_name: str) -> set[str]:
    """``self`` attributes read by ``decision()`` or its resolved callees."""
    entry = graph.resolve_method(class_name, "decision")
    if entry is None:
        return set()
    attrs: set[str] = set()
    for qname in graph.reachable_from({entry}):
        record = graph.functions[qname]
        if record.class_name is None:
            continue
        for node in ast.walk(record.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                attrs.add(node.attr)
    # ctx is runner-provided plumbing, never a decision *value*.
    attrs.discard("ctx")
    return attrs


def verifying_functions(project: ProjectIndex, graph: ProtocolGraph) -> set[str]:
    cached = project.caches.get(_VERIFYING_CACHE_KEY)
    if not isinstance(cached, set):
        cached = graph.functions_calling(VERIFY_MARKERS)
        project.caches[_VERIFYING_CACHE_KEY] = cached
    return cached


def _decision_store_target(target: ast.expr, decision_attrs: set[str]) -> str | None:
    """The decision attribute a store targets (``self.a = ...``,
    ``self.a[k] = ...``), if any."""
    attr = _self_attr(target)
    if attr is not None and attr in decision_attrs:
        return attr
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None and attr in decision_attrs:
            return attr
    return None


def _param_names(record: FunctionRecord) -> list[str]:
    args = record.node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if names and names[0] == "self":
        names = names[1:]
    return names


def param_sink_summary(
    record: FunctionRecord, decision_attrs: set[str]
) -> frozenset[str]:
    """Parameters this method stores (possibly via locals) into decision
    state — one-level interprocedural summaries for helper setters."""
    sinking: set[str] = set()
    for name in _param_names(record):
        tainted = tainted_names(
            record.node, frozenset({name}), payload_is_source=False
        )
        for _node, _attr, values in _direct_sinks(record.node, decision_attrs):
            if any(
                _expr_tainted(value, tainted, payload_is_source=False)
                for value in values
            ):
                sinking.add(name)
                break
    return frozenset(sinking)


def _direct_sinks(
    method: ast.AST, decision_attrs: set[str]
) -> Iterator[tuple[ast.AST, str, list[ast.expr]]]:
    """Every store into decision state: ``(anchor node, attr, value exprs)``."""
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _decision_store_target(target, decision_attrs)
                if attr is not None:
                    yield node, attr, [node.value]
        elif isinstance(node, ast.AugAssign):
            attr = _decision_store_target(node.target, decision_attrs)
            if attr is not None:
                yield node, attr, [node.value]
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                attr = _self_attr(node.func.value)
                if attr is not None and attr in decision_attrs:
                    yield node, attr, list(node.args) + [
                        kw.value for kw in node.keywords
                    ]


@register
class UnverifiedRelayRule(Rule):
    """BA008: tainted inbox payloads must not reach decision state."""

    rule_id = "BA008"
    summary = "decisions must not depend on unverified relayed payloads"

    def applies(self, file: SourceFile) -> bool:
        return file.protocol_code

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        graph = protocol_graph(project)
        verifying = verifying_functions(project, graph)
        seen: set[tuple[int, int, str]] = set()
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in graph.processor_classes:
                continue
            if not self._authenticated_context(graph, project, node.name):
                continue
            decision_attrs = decision_attributes(graph, node.name)
            if not decision_attrs:
                continue
            methods = graph.resolved_methods(node.name)
            summaries = {
                qname: param_sink_summary(graph.functions[qname], decision_attrs)
                for qname in methods.values()
                if qname in graph.functions
            }
            for qname in sorted(methods.values()):
                record = graph.functions.get(qname)
                if record is None or record.file.display != file.display:
                    continue
                if qname in verifying:
                    continue
                yield from self._method_findings(
                    file, graph, record, decision_attrs, summaries,
                    verifying, seen,
                )

    def _method_findings(
        self,
        file: SourceFile,
        graph: ProtocolGraph,
        record: FunctionRecord,
        decision_attrs: set[str],
        summaries: dict[str, frozenset[str]],
        verifying: set[str],
        seen: set[tuple[int, int, str]],
    ) -> Iterator[Finding]:
        tainted = tainted_names(record.node, frozenset())
        for anchor, attr, values in _direct_sinks(record.node, decision_attrs):
            if any(_expr_tainted(value, tainted) for value in values):
                yield from self._emit(
                    file, anchor, seen,
                    f"unverified relayed payload flows into self.{attr}, "
                    f"which feeds {record.class_name}.decision(); verify "
                    f"the signature chain before storing",
                )
        for node in ast.walk(record.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if callee == "decide" and any(
                _expr_tainted(arg, tainted) for arg in node.args
            ):
                yield from self._emit(
                    file, node, seen,
                    "unverified relayed payload passed to decide(); verify "
                    "the signature chain first",
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and record.class_name is not None
            ):
                resolved = graph.resolve_method(record.class_name, func.attr)
                if resolved is None or resolved in verifying:
                    continue
                sinking = summaries.get(resolved, frozenset())
                if not sinking:
                    continue
                callee_record = graph.functions.get(resolved)
                if callee_record is None:
                    continue
                params = _param_names(callee_record)
                for position, arg in enumerate(node.args):
                    if position < len(params) and params[
                        position
                    ] in sinking and _expr_tainted(arg, tainted):
                        yield from self._emit(
                            file, node, seen,
                            f"unverified relayed payload passed to "
                            f"self.{func.attr}(), which stores it into "
                            f"decision state; verify before handing it on",
                        )
                        break

    def _emit(
        self,
        file: SourceFile,
        node: ast.AST,
        seen: set[tuple[int, int, str]],
        message: str,
    ) -> Iterator[Finding]:
        finding = file.finding(node, self.rule_id, message)
        key = (finding.line, finding.column, finding.message)
        if key not in seen:
            seen.add(key)
            yield finding

    def _authenticated_context(
        self, graph: ProtocolGraph, project: ProjectIndex, class_name: str
    ) -> bool:
        """Whether any algorithm using this processor is authenticated.

        Unauthenticated protocols (oral messages, phase king) have no
        signatures to check, so the taint discipline does not apply.
        Processors no known algorithm instantiates default to checked.
        """
        users = []
        for algorithm, record in project.algorithm_classes.items():
            node = graph.class_nodes.get(algorithm)
            if node is None:
                continue
            if any(
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Name)
                and call.func.id == class_name
                for call in ast.walk(node)
            ):
                users.append(record)
        if not users:
            return True
        for record in users:
            declared = project.resolve_class_attribute(record, "authenticated")
            if (
                isinstance(declared, ast.Constant)
                and isinstance(declared.value, bool)
            ):
                if declared.value:
                    return True
            else:
                # AgreementAlgorithm defaults to authenticated=True.
                return True
        return False
