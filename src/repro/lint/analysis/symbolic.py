"""Symbolic per-invocation fan-out estimates in the bound language.

The estimator walks a method body and turns each *site* (a send tuple, a
signing call — the caller supplies the site detector) into a symbolic
multiplicity: the product of the sizes of every enclosing loop and
comprehension, expressed as a string of the bound-expression language
(:mod:`repro.bounds.expressions`) over ``n``, ``t``, ``s``, ``m`` …

The estimate is deliberately a *sound-ish lower witness*, not a complete
count: any site under a loop whose range cannot be resolved statically
(``for q in self.relays``) is skipped rather than guessed, and a finding
is only justified when the sum of the *resolvable* sites alone already
exceeds the declared whole-run budget at every sampled parameter point.
What the estimator refuses to guess it reports in
``FanoutEstimate.skipped`` so rules can mention the omission.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.bounds.expressions import (
    PARAMETER_NAMES,
    BoundExpressionError,
    evaluate_bound,
)
from repro.lint.analysis.callgraph import FunctionRecord

#: A site detector: yields the AST nodes of interest inside one method.
SiteFinder = Callable[[FunctionRecord], Iterator[ast.AST]]

#: Size of the inbox parameter: at most one enqueued sender per peer in a
#: canonical run (the adversary can exceed this, but then *it* pays).
INBOX_SIZE = "n - 1"

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp)
_PASSTHROUGH_CALLS = frozenset(
    {"sorted", "list", "tuple", "set", "frozenset", "reversed"}
)


@dataclass(frozen=True, slots=True)
class FanoutEstimate:
    """Sum of resolvable site multiplicities for one entry point."""

    #: bound-language expression, or ``None`` when no site resolved.
    expr: str | None
    #: number of sites that contributed to ``expr``.
    sites: int
    #: sites skipped because an enclosing range was not resolvable.
    skipped: int


def scalar_expr(node: ast.expr) -> str | None:
    """*node* as a bound-language scalar (``self.t + 1`` -> ``"(t) + (1)"``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return str(node.value)
    if isinstance(node, ast.Name) and node.id in PARAMETER_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in PARAMETER_NAMES:
        # self.t / ctx.t / self.ctx.t all denote the protocol parameter.
        value = node.value
        if isinstance(value, ast.Name) and value.id in {"self", "ctx"}:
            return node.attr
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "ctx"
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            return node.attr
        return None
    if isinstance(node, ast.BinOp):
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            return None
        left = scalar_expr(node.left)
        right = scalar_expr(node.right)
        if left is None or right is None:
            return None
        return f"({left}) {op} ({right})"
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = scalar_expr(node.operand)
        return None if operand is None else f"0 - ({operand})"
    return None


_BIN_OPS: dict[type, str] = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.FloorDiv: "//",
}


def iterable_size(node: ast.expr, env: Mapping[str, str]) -> str | None:
    """Symbolic element count of an iterable expression, if resolvable."""
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, _COMPREHENSIONS):
        return _comprehension_size(node, env)
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name == "others" and not node.args:
        return "n - 1"
    if name == "range":
        args = node.args
        if len(args) == 1:
            return scalar_expr(args[0])
        if len(args) == 2:
            start = scalar_expr(args[0])
            stop = scalar_expr(args[1])
            if start is None or stop is None:
                return None
            return f"({stop}) - ({start})"
        return None
    if name in _PASSTHROUGH_CALLS and node.args:
        return iterable_size(node.args[0], env)
    return None


def _comprehension_size(
    node: ast.ListComp | ast.SetComp | ast.GeneratorExp,
    env: Mapping[str, str],
) -> str | None:
    sizes: list[str] = []
    for generator in node.generators:
        if generator.ifs:
            # A filter makes the count an upper bound, and the estimator
            # only trusts itself when it has a lower witness — give up.
            return None
        size = iterable_size(generator.iter, env)
        if size is None:
            return None
        sizes.append(size)
    if not sizes:
        return None
    return " * ".join(f"({size})" for size in sizes)


def local_sizes(method: ast.AST) -> dict[str, str]:
    """Sizes of local names assigned statically-resolvable iterables.

    Seeds ``inbox`` (the ``on_phase`` parameter) with :data:`INBOX_SIZE`.
    First resolvable assignment wins — good enough for the
    branch-then-iterate shape protocol code uses.
    """
    env: dict[str, str] = {"inbox": INBOX_SIZE}
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                size = iterable_size(node.value, env)
                if size is not None:
                    env.setdefault(target.id, size)
    return env


def site_multiplicity(
    record: FunctionRecord,
    site: ast.AST,
    env: Mapping[str, str],
) -> str | None:
    """Product of enclosing loop/comprehension sizes, or ``None``.

    ``None`` means an enclosing iteration could not be resolved (or the
    site sits under a ``while`` loop / nested function) and the site must
    be skipped rather than guessed at.
    """
    factors: list[str] = []
    parents = record.file.parents
    previous: ast.AST = site
    current = parents.get(site)
    while current is not None and current is not record.node:
        if isinstance(current, (ast.For, ast.AsyncFor)):
            if previous is not current.iter:
                size = iterable_size(current.iter, env)
                if size is None:
                    return None
                factors.append(size)
        elif isinstance(current, ast.While):
            return None
        elif isinstance(current, _COMPREHENSIONS):
            if previous is current.elt:
                size = _comprehension_size(current, env)
                if size is None:
                    return None
                factors.append(size)
        elif isinstance(current, ast.DictComp):
            return None
        elif isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return None
        previous, current = current, parents.get(current)
    if current is None:
        return None
    if not factors:
        return "1"
    return " * ".join(f"({factor})" for factor in factors)


def accumulate_fanout(
    methods: Iterable[FunctionRecord],
    site_finder: SiteFinder,
) -> FanoutEstimate:
    """Sum the site multiplicities across *methods* (one invocation each)."""
    terms: list[str] = []
    skipped = 0
    for record in methods:
        env = local_sizes(record.node)
        for site in site_finder(record):
            multiplicity = site_multiplicity(record, site, env)
            if multiplicity is None:
                skipped += 1
            else:
                terms.append(f"({multiplicity})")
    if not terms:
        return FanoutEstimate(expr=None, sites=0, skipped=skipped)
    return FanoutEstimate(
        expr=" + ".join(terms), sites=len(terms), skipped=skipped
    )


def exceeds_everywhere(
    static_expr: str,
    declared_expr: str,
    grid: Iterable[Mapping[str, int]],
) -> tuple[Mapping[str, int], int, int] | None:
    """Check ``static > declared`` at *every* grid point.

    Returns ``(point, static_value, declared_value)`` for the most extreme
    point when the static estimate strictly exceeds the declared bound at
    all of them — consistent exceedance is what separates a structural
    budget violation from a borderline parameter choice.  Returns ``None``
    (no finding) if any point reconciles or any evaluation fails.
    """
    worst: tuple[Mapping[str, int], int, int] | None = None
    for point in grid:
        try:
            static_value = evaluate_bound(static_expr, point)
            declared_value = evaluate_bound(declared_expr, point)
        except BoundExpressionError:
            return None
        if static_value <= declared_value:
            return None
        if worst is None or (static_value - declared_value) > (
            worst[1] - worst[2]
        ):
            worst = (point, static_value, declared_value)
    return worst
