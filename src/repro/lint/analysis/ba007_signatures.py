"""BA007: per-phase signing fan-out must fit the declared signature budget.

Paper invariant: Theorem 1 proves authenticated Byzantine agreement needs
Omega(nt) signatures in the worst case, and each authenticated algorithm
declares its matching upper bound (``signature_bound``).  Like BA006 for
messages, a processor whose statically-resolvable signing sites already
produce more signatures in a **single** ``on_phase`` invocation than the
declared whole-run budget cannot honour that declaration.

Signing sites are the calls that mint new signatures in this codebase:
``service.sign(...)`` / ``ctx.sign(...)``, ``service.endorse(...)``,
``SignatureChain.initial(...)``, and ``chain.extend(key, service)``
(recognised by a ``key`` argument, which distinguishes it from
``list.extend``).  Multiplicities and the comparison grid are shared with
BA006; unsized loops skip their sites, and a finding requires strict
exceedance at every sampled point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.analysis.ba006_messages import (
    bound_anchor,
    declared_bound,
    instantiated_processors,
    phase_reachable_methods,
)
from repro.lint.analysis.callgraph import FunctionRecord, protocol_graph
from repro.bounds.expressions import SAMPLE_GRID
from repro.lint.analysis.symbolic import FanoutEstimate, accumulate_fanout, exceeds_everywhere
from repro.lint.engine import Finding, ProjectIndex, Rule, SourceFile, register

#: attribute calls that always mint exactly one new signature.
_SIGNING_ATTRS = frozenset({"sign", "endorse", "initial"})


def _mentions_key(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "key"
    if isinstance(node, ast.Attribute):
        return node.attr == "key"
    return False


def signature_sites(record: FunctionRecord) -> Iterator[ast.AST]:
    """Calls that create a signature inside one method."""
    for node in ast.walk(record.node):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        if node.func.attr in _SIGNING_ATTRS:
            yield node
        elif node.func.attr == "extend" and any(
            _mentions_key(arg) for arg in node.args
        ):
            # SignatureChain.extend(key, service) — not list.extend.
            yield node


@register
class SignatureBudgetRule(Rule):
    """BA007: one phase must not out-sign the declared whole-run budget."""

    rule_id = "BA007"
    summary = "per-phase signing fan-out must fit the declared signature_bound"

    def applies(self, file: SourceFile) -> bool:
        return file.protocol_code

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        graph = protocol_graph(project)
        estimates: dict[str, FanoutEstimate] = {}
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            record = project.algorithm_classes.get(node.name)
            if record is None or record.display != file.display:
                continue
            declaration = declared_bound(project, record, "signature_bound")
            if declaration is None:
                continue
            for processor in sorted(instantiated_processors(graph, node)):
                estimate = estimates.get(processor)
                if estimate is None:
                    estimate = accumulate_fanout(
                        phase_reachable_methods(graph, processor),
                        signature_sites,
                    )
                    estimates[processor] = estimate
                if estimate.expr is None:
                    continue
                exceeded = exceeds_everywhere(
                    estimate.expr, declaration, SAMPLE_GRID
                )
                if exceeded is None:
                    continue
                point, static_value, declared_value = exceeded
                sample = ", ".join(
                    f"{name}={point[name]}" for name in ("n", "t")
                )
                yield file.finding(
                    bound_anchor(record, node, "signature_bound"),
                    self.rule_id,
                    f"{processor} (used by {node.name}) can create "
                    f"{estimate.expr} signatures in a single on_phase "
                    f"call, which exceeds signature_bound = "
                    f"{declaration!r} at every sampled point (e.g. "
                    f"{sample}: {static_value} > {declared_value}); one "
                    f"invocation already overruns the whole-run budget",
                )
