"""A name-resolved call graph over every file the engine parsed.

The graph is deliberately modest: it resolves the call shapes that
actually occur in protocol code — ``self.method()`` through the static
base chain, ``ClassName.method(self, ...)`` delegation, bare module-level
function calls (same module first, then a project-wide name match), and
``ClassName(...)`` instantiations — and records every *unresolved* callee
name so analyses can treat attribute calls like ``chain.verify()`` as
semantic markers without knowing the receiver's type.

Built once per lint run and memoized on ``ProjectIndex.caches``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.engine import ProjectIndex, SourceFile

_CACHE_KEY = "protocol-call-graph"

#: The root class of the processor hierarchy (``core/protocol.py``).
PROCESSOR_BASE = "Processor"


@dataclass(slots=True)
class FunctionRecord:
    """One function or method definition, addressable by qualified name."""

    qname: str
    name: str
    class_name: str | None
    file: SourceFile
    node: ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(slots=True)
class CallSummary:
    """What one function calls: resolved edges plus raw callee names."""

    #: qnames of statically-resolved callees.
    resolved: set[str] = field(default_factory=set)
    #: every callee name seen (attribute or bare), resolved or not.
    names: set[str] = field(default_factory=set)
    #: class names constructed via a direct ``ClassName(...)`` call.
    instantiated: set[str] = field(default_factory=set)


@dataclass(slots=True)
class ProtocolGraph:
    """Functions, call edges, and the processor-class hierarchy."""

    project: ProjectIndex
    functions: dict[str, FunctionRecord] = field(default_factory=dict)
    calls: dict[str, CallSummary] = field(default_factory=dict)
    #: class name -> methods defined in its own body (name -> qname).
    own_methods: dict[str, dict[str, str]] = field(default_factory=dict)
    class_nodes: dict[str, ast.ClassDef] = field(default_factory=dict)
    class_files: dict[str, SourceFile] = field(default_factory=dict)
    #: module display -> module-level functions (name -> qname).
    module_functions: dict[str, dict[str, str]] = field(default_factory=dict)
    #: bare name -> every module-level function qname with that name.
    by_name: dict[str, list[str]] = field(default_factory=dict)
    #: transitive ``Processor`` subclasses (the root itself excluded).
    processor_classes: set[str] = field(default_factory=set)

    # -- resolution ----------------------------------------------------

    def resolve_method(self, class_name: str, method: str) -> str | None:
        """Find *method* on *class_name* or its statically-known bases."""
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            qname = self.own_methods.get(current, {}).get(method)
            if qname is not None:
                return qname
            record = self.project.classes.get(current)
            if record is not None:
                queue.extend(record.bases)
        return None

    def resolved_methods(self, class_name: str) -> dict[str, str]:
        """Every method visible on *class_name* (nearest definition wins)."""
        methods: dict[str, str] = {}
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for name, qname in self.own_methods.get(current, {}).items():
                methods.setdefault(name, qname)
            record = self.project.classes.get(current)
            if record is not None:
                queue.extend(record.bases)
        return methods

    # -- closures ------------------------------------------------------

    def reachable_from(self, seeds: Iterable[str]) -> set[str]:
        """Transitive closure of the resolved call edges."""
        reached: set[str] = set()
        queue = [q for q in seeds if q in self.functions]
        while queue:
            current = queue.pop()
            if current in reached:
                continue
            reached.add(current)
            summary = self.calls.get(current)
            if summary is not None:
                queue.extend(q for q in summary.resolved if q not in reached)
        return reached

    def functions_calling(self, markers: frozenset[str]) -> set[str]:
        """Functions that (transitively) call anything named in *markers*.

        Used for the "verifying" closure: a method that somewhere invokes
        ``...verify(...)`` or ``...is_input_edge(...)`` — directly or via
        a helper — counts as a verification step.
        """
        marked = {
            qname
            for qname, summary in self.calls.items()
            if summary.names & markers
        }
        changed = True
        while changed:
            changed = False
            for qname, summary in self.calls.items():
                if qname in marked:
                    continue
                if summary.resolved & marked:
                    marked.add(qname)
                    changed = True
        return marked


def _function_defs(
    file: SourceFile,
) -> Iterable[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Every function definition in *file* with its owning class name."""

    def visit(node: ast.AST, class_name: str | None) -> Iterable:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, class_name
                # nested defs stay attributed to the same class scope.
                yield from visit(child, class_name)
            else:
                yield from visit(child, class_name)

    yield from visit(file.tree, None)


def _extract_calls(graph: ProtocolGraph, record: FunctionRecord) -> CallSummary:
    summary = CallSummary()
    module = graph.module_functions.get(record.file.display, {})
    for node in ast.walk(record.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            summary.names.add(func.id)
            if func.id in graph.class_nodes:
                summary.instantiated.add(func.id)
            elif func.id in module:
                summary.resolved.add(module[func.id])
            else:
                summary.resolved.update(graph.by_name.get(func.id, ()))
        elif isinstance(func, ast.Attribute):
            summary.names.add(func.attr)
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self":
                if record.class_name is not None:
                    resolved = graph.resolve_method(record.class_name, func.attr)
                    if resolved is not None:
                        summary.resolved.add(resolved)
            elif isinstance(value, ast.Name) and value.id in graph.class_nodes:
                # ClassName.method(self, ...) delegation.
                resolved = graph.resolve_method(value.id, func.attr)
                if resolved is not None:
                    summary.resolved.add(resolved)
    return summary


def build_graph(project: ProjectIndex) -> ProtocolGraph:
    """Build the call graph over ``project.files`` (no memoization)."""
    graph = ProtocolGraph(project=project)
    for file in project.files:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                graph.class_nodes[node.name] = node
                graph.class_files[node.name] = file
        for node, class_name in _function_defs(file):
            scope = f"{class_name}." if class_name else ""
            qname = f"{file.display}::{scope}{node.name}"
            record = FunctionRecord(
                qname=qname,
                name=node.name,
                class_name=class_name,
                file=file,
                node=node,
            )
            graph.functions[qname] = record
            if class_name is None:
                graph.module_functions.setdefault(file.display, {})[
                    node.name
                ] = qname
                graph.by_name.setdefault(node.name, []).append(qname)
            else:
                graph.own_methods.setdefault(class_name, {})[node.name] = qname
    # Fixpoint: transitive Processor subclasses, mirroring how the engine
    # finds algorithm classes.
    processors: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, record in project.classes.items():
            if name in processors:
                continue
            if any(
                base == PROCESSOR_BASE or base in processors
                for base in record.bases
            ):
                processors.add(name)
                changed = True
    graph.processor_classes = processors
    for record in graph.functions.values():
        graph.calls[record.qname] = _extract_calls(graph, record)
    return graph


def protocol_graph(project: ProjectIndex) -> ProtocolGraph:
    """The memoized per-run call graph."""
    cached = project.caches.get(_CACHE_KEY)
    if not isinstance(cached, ProtocolGraph):
        cached = build_graph(project)
        project.caches[_CACHE_KEY] = cached
    return cached
