"""BA006: per-phase send fan-out must fit the declared message budget.

Paper invariant: Theorem 1's whole-run message lower bound only means
something because each algorithm also declares its *upper* bound
(``message_bound``, PR 1).  A processor whose statically-resolvable send
sites already emit more messages in a **single** ``on_phase`` invocation
than the declared whole-run budget allows cannot possibly honour that
declaration — no schedule reconciles them.

The check walks every method reachable from ``on_phase`` through
resolved ``self.*``/delegated calls, collects outgoing-shaped
``(destination, payload)`` tuples, multiplies the sizes of their
enclosing loops symbolically (``for q in self.ctx.others()`` -> ``n - 1``,
``range(self.t + 1)`` -> ``t + 1``) and compares the sum against
``message_bound`` at the BA002 sample grid.  Sites under loops the
analysis cannot size (``for q in self.relays``) are *skipped*, and a
finding requires strict exceedance at **every** sampled point, so the
rule only speaks when the budget is structurally unreconcilable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.bounds.expressions import (
    SAMPLE_GRID,
    SENTINELS,
    BoundExpressionError,
    validate_bound_expression,
)
from repro.lint.analysis.callgraph import FunctionRecord, ProtocolGraph, protocol_graph
from repro.lint.analysis.symbolic import (
    FanoutEstimate,
    accumulate_fanout,
    exceeds_everywhere,
)
from repro.lint.asthelpers import constant_str
from repro.lint.engine import (
    ClassRecord,
    Finding,
    ProjectIndex,
    Rule,
    SourceFile,
    register,
)

#: list methods that enqueue one outgoing message per call.
_EMIT_METHODS = frozenset({"append", "insert"})


def _is_outgoing_shaped(file: SourceFile, node: ast.Tuple) -> bool:
    """Whether a Load 2-tuple sits in an outgoing-message position:
    an element of a list / comprehension being built, an ``append``
    argument, or a ``yield``.  Pair-returns and tuple-packing assignments
    are deliberately not counted."""
    parent = file.parents.get(node)
    if isinstance(parent, ast.List):
        return node in parent.elts
    if isinstance(parent, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return node is parent.elt
    if isinstance(parent, ast.Yield):
        return True
    if isinstance(parent, ast.Call) and node in parent.args:
        func = parent.func
        return isinstance(func, ast.Attribute) and func.attr in _EMIT_METHODS
    return False


def message_sites(record: FunctionRecord) -> Iterator[ast.AST]:
    """Outgoing-shaped ``(destination, payload)`` tuples in one method."""
    for node in ast.walk(record.node):
        if (
            isinstance(node, ast.Tuple)
            and len(node.elts) == 2
            and isinstance(node.ctx, ast.Load)
            and _is_outgoing_shaped(record.file, node)
        ):
            yield node


def phase_reachable_methods(
    graph: ProtocolGraph, processor: str
) -> list[FunctionRecord]:
    """Methods executed by one ``on_phase`` call, via resolved edges.

    Module-level helpers are excluded from site collection: a bare
    function returning a pair is far more likely a utility than a send.
    """
    entry = graph.resolve_method(processor, "on_phase")
    if entry is None:
        return []
    return [
        graph.functions[qname]
        for qname in sorted(graph.reachable_from({entry}))
        if graph.functions[qname].class_name is not None
    ]


def instantiated_processors(
    graph: ProtocolGraph, algorithm_node: ast.ClassDef
) -> set[str]:
    """Processor classes the algorithm constructs by name."""
    found: set[str] = set()
    for node in ast.walk(algorithm_node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in graph.processor_classes:
                found.add(node.func.id)
    return found


def declared_bound(
    project: ProjectIndex, record: ClassRecord, attribute: str
) -> str | None:
    """The declared bound expression, or ``None`` when absent, a
    sentinel, or malformed (BA002 owns those complaints)."""
    declaration = constant_str(project.resolve_class_attribute(record, attribute))
    if declaration is None or declaration in SENTINELS:
        return None
    try:
        validate_bound_expression(declaration)
    except BoundExpressionError:
        return None
    return declaration


def bound_anchor(record: ClassRecord, node: ast.ClassDef, attribute: str) -> ast.AST:
    """Anchor findings on the declaration when it is in this class body,
    so a ``# noqa`` on the declaration line suppresses them."""
    return record.attributes.get(attribute, node)


@register
class MessageBudgetRule(Rule):
    """BA006: one phase must not out-send the declared whole-run budget."""

    rule_id = "BA006"
    summary = "per-phase send fan-out must fit the declared message_bound"

    def applies(self, file: SourceFile) -> bool:
        return file.protocol_code

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        graph = protocol_graph(project)
        estimates: dict[str, FanoutEstimate] = {}
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            record = project.algorithm_classes.get(node.name)
            if record is None or record.display != file.display:
                continue
            declaration = declared_bound(project, record, "message_bound")
            if declaration is None:
                continue
            for processor in sorted(instantiated_processors(graph, node)):
                estimate = estimates.get(processor)
                if estimate is None:
                    estimate = accumulate_fanout(
                        phase_reachable_methods(graph, processor),
                        message_sites,
                    )
                    estimates[processor] = estimate
                if estimate.expr is None:
                    continue
                exceeded = exceeds_everywhere(
                    estimate.expr, declaration, SAMPLE_GRID
                )
                if exceeded is None:
                    continue
                point, static_value, declared_value = exceeded
                sample = ", ".join(
                    f"{name}={point[name]}" for name in ("n", "t")
                )
                yield file.finding(
                    bound_anchor(record, node, "message_bound"),
                    self.rule_id,
                    f"{processor} (used by {node.name}) can emit "
                    f"{estimate.expr} messages in a single on_phase call, "
                    f"which exceeds message_bound = {declaration!r} at "
                    f"every sampled point (e.g. {sample}: {static_value} "
                    f"> {declared_value}); one invocation already overruns "
                    f"the whole-run budget",
                )
