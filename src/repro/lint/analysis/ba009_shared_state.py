"""BA009: no shared-state mutation reachable from sweep worker entries.

The parallel sweep engine (:mod:`repro.analysis.parallel`, PR 2) fans
scenario tasks out to worker threads/processes.  Its correctness — and
the trustworthiness of every message/signature count a sweep reports —
assumes tasks are *pure*: a task may build its own processors and
runners, but must never write state visible to another task.  A
``global`` statement or a ``SomeClass.attr = ...`` class-attribute store
anywhere in code reachable from the worker entry points is exactly the
hazard that turns a 16-way sweep into a data race.

Reachability starts from every function defined in a ``parallel.py``
module.  Because the worker dispatch is duck-typed (``task.run()``), an
unresolved ``run`` callee bridges to every method named ``run`` in the
project — a deliberate over-approximation: anything that *could* be a
task body is held to the discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.analysis.callgraph import ProtocolGraph, protocol_graph
from repro.lint.engine import Finding, ProjectIndex, Rule, SourceFile, register

#: Files whose functions are worker entry points.
WORKER_FILE_NAME = "parallel.py"

#: Duck-typed dispatch names bridged to every same-named method.
BRIDGE_METHODS = frozenset({"run"})

_REACHABLE_CACHE_KEY = "ba009-worker-reachable"


def worker_reachable(project: ProjectIndex, graph: ProtocolGraph) -> set[str]:
    """Functions reachable from the sweep worker entry points."""
    cached = project.caches.get(_REACHABLE_CACHE_KEY)
    if isinstance(cached, set):
        return cached
    entries = {
        qname
        for qname, record in graph.functions.items()
        if record.file.path.name == WORKER_FILE_NAME
    }
    reached = graph.reachable_from(entries)
    changed = True
    while changed:
        changed = False
        bridged = {
            name
            for qname in reached
            for name in graph.calls[qname].names & BRIDGE_METHODS
        }
        if bridged:
            for qname, record in graph.functions.items():
                if (
                    record.class_name is not None
                    and record.name in bridged
                    and qname not in reached
                ):
                    reached |= graph.reachable_from({qname})
                    changed = True
    project.caches[_REACHABLE_CACHE_KEY] = reached
    return reached


@register
class SharedStateRule(Rule):
    """BA009: sweep-worker-reachable code must not mutate shared state."""

    rule_id = "BA009"
    summary = "no shared-state mutation reachable from sweep workers"

    def check(self, file: SourceFile, project: ProjectIndex) -> Iterator[Finding]:
        graph = protocol_graph(project)
        reached = worker_reachable(project, graph)
        seen: set[tuple[int, int]] = set()
        for qname in sorted(reached):
            record = graph.functions[qname]
            if record.file.display != file.display:
                continue
            for node in ast.walk(record.node):
                if isinstance(node, ast.Global):
                    yield from self._emit(
                        file, node, seen,
                        f"'global {', '.join(node.names)}' in "
                        f"{record.name}() is reachable from the parallel "
                        f"sweep workers (analysis/parallel.py); workers "
                        f"must not mutate module state",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        owner = self._class_attribute_owner(target, project)
                        if owner is not None:
                            yield from self._emit(
                                file, node, seen,
                                f"assignment to class attribute "
                                f"{owner}.{target.attr} in {record.name}() "  # type: ignore[union-attr]
                                f"is reachable from the parallel sweep "
                                f"workers; class attributes are shared "
                                f"across tasks",
                            )

    def _class_attribute_owner(
        self, target: ast.expr, project: ProjectIndex
    ) -> str | None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in project.classes
        ):
            return target.value.id
        return None

    def _emit(
        self,
        file: SourceFile,
        node: ast.AST,
        seen: set[tuple[int, int]],
        message: str,
    ) -> Iterator[Finding]:
        finding = file.finding(node, self.rule_id, message)
        key = (finding.line, finding.column)
        if key not in seen:
            seen.add(key)
            yield finding
