"""Interprocedural analyses over the whole linted tree.

The per-file rules (BA001-BA005) are syntactic; the modules here reason
about the *program*: a call graph over protocol code
(:mod:`repro.lint.analysis.callgraph`), symbolic per-invocation fan-out
estimates in the bound-expression language
(:mod:`repro.lint.analysis.symbolic`), and four rules built on top of
them:

* **BA006** — a processor's statically-resolvable send fan-out in a
  single ``on_phase`` invocation must fit inside the algorithm's declared
  whole-run ``message_bound``.
* **BA007** — same accounting for signing sites vs. ``signature_bound``.
* **BA008** — in authenticated algorithms, payloads read from the inbox
  are tainted until a verification step; tainted values must not reach
  decision state.
* **BA009** — no shared protocol/module state is mutated in code
  reachable from the parallel sweep worker entry points.

Everything here works purely on the ASTs the engine already parsed; the
graph is built once per run and memoized on ``ProjectIndex.caches``.
"""

from repro.lint.analysis.callgraph import FunctionRecord, ProtocolGraph, protocol_graph
from repro.lint.analysis.symbolic import FanoutEstimate, exceeds_everywhere

__all__ = [
    "FanoutEstimate",
    "FunctionRecord",
    "ProtocolGraph",
    "exceeds_everywhere",
    "protocol_graph",
]
