"""Grandfathered lint findings: the ``--baseline`` mechanism.

A baseline file records the findings a tree is *known* to have, so CI can
fail on anything **new** while tracked debt stays visible instead of
being silenced at the source.  Entries match findings by fingerprint —
``(rule, canonical path, message)`` — deliberately ignoring line numbers,
so unrelated edits above a grandfathered finding do not break the gate.

Paths are canonicalized to the package-relative form (everything from the
last ``repro`` path component on), which makes the same baseline file
work whether the tree is linted as ``src/repro`` or as an installed
package.  Each entry may carry a free-form ``reason`` explaining why the
finding is tolerated; ``write_baseline`` preserves reasons across
regeneration.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Iterable, Sequence

from repro.lint.engine import Finding, LintReport

#: Schema tag written to (and required of) every baseline file.
BASELINE_SCHEMA = "repro-lint-baseline/1"


class BaselineError(ValueError):
    """The baseline file is missing, malformed, or has the wrong schema."""


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    message: str
    reason: str = ""

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)


@dataclass(slots=True)
class BaselineResult:
    """A report diffed against a baseline."""

    new: list[Finding] = field(default_factory=list)
    matched: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.new

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def canonical_path(path: str) -> str:
    """Package-relative posix path: from the last ``repro`` component on."""
    parts = PurePosixPath(path.replace("\\", "/")).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return "/".join(parts)


def fingerprint(finding: Finding) -> tuple[str, str, str]:
    return (finding.rule, canonical_path(finding.path), finding.message)


def load_baseline(path: Path) -> list[BaselineEntry]:
    """Parse a baseline file, validating the schema tag."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path} is not a {BASELINE_SCHEMA!r} baseline file"
        )
    entries: list[BaselineEntry] = []
    raw_entries = payload.get("findings", [])
    if not isinstance(raw_entries, list):
        raise BaselineError(f"{path}: 'findings' must be a list")
    for raw in raw_entries:
        if not isinstance(raw, dict):
            raise BaselineError(f"{path}: baseline entries must be objects")
        try:
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    message=str(raw["message"]),
                    reason=str(raw.get("reason", "")),
                )
            )
        except KeyError as error:
            raise BaselineError(
                f"{path}: baseline entry missing key {error}"
            ) from error
    return entries


def apply_baseline(
    report: LintReport, entries: Sequence[BaselineEntry]
) -> BaselineResult:
    """Split the report's findings into new vs. grandfathered.

    Matching is counted: two identical findings need two baseline
    entries, so a regression that *duplicates* known debt still fails.
    """
    budget = Counter(entry.fingerprint for entry in entries)
    result = BaselineResult()
    for finding in report.findings:
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            result.matched.append(finding)
        else:
            result.new.append(finding)
    leftovers = +budget
    if leftovers:
        seen: Counter[tuple[str, str, str]] = Counter()
        for entry in entries:
            key = entry.fingerprint
            if seen[key] < leftovers.get(key, 0):
                seen[key] += 1
                result.stale.append(entry)
    return result


def write_baseline(
    report: LintReport,
    path: Path,
    previous: Iterable[BaselineEntry] = (),
) -> int:
    """Write the report's findings as the new baseline.

    Reasons from *previous* entries are carried over by fingerprint.
    Returns the number of entries written.
    """
    reasons: dict[tuple[str, str, str], str] = {}
    for entry in previous:
        if entry.reason:
            reasons.setdefault(entry.fingerprint, entry.reason)
    entries = []
    for finding in sorted(report.findings):
        key = fingerprint(finding)
        entry = {
            "rule": key[0],
            "path": key[1],
            "message": key[2],
        }
        reason = reasons.get(key, "")
        if reason:
            entry["reason"] = reason
        entries.append(entry)
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
