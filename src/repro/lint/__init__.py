"""Protocol linter: AST-based static verification of the paper's discipline.

The bounds of Dolev & Reischuk only hold for algorithms that are
*deterministic* correctness rules with *declared* message/signature/phase
budgets.  The runtime conformance checker (:mod:`repro.core.conformance`)
can only catch a violation a simulation happens to exercise; this package
checks the discipline statically, before anything runs.

Rule catalogue (each encodes a paper invariant — see README "Static
analysis"):

* **BA001** — no nondeterminism in protocol code (``random``, wall-clock
  time, ``os.urandom``, unordered ``set`` iteration).
* **BA002** — every ``AgreementAlgorithm`` subclass declares
  ``message_bound``/``phase_bound`` (and ``signature_bound`` when
  authenticated), cross-checked against :mod:`repro.bounds.formulas`.
* **BA003** — all signing authority flows through the runner:
  no ``SignatureService``/``SigningKey`` construction in algorithm modules.
* **BA004** — received :class:`~repro.core.message.Envelope` objects are
  never mutated (tamper-proof histories).
* **BA005** — no bare dict-order fan-out in protocol hot paths without a
  sorted key.

Run it as ``repro lint [paths] [--format=text|json]``.
"""

from repro.lint.engine import (
    Finding,
    LintEngine,
    LintReport,
    ProjectIndex,
    Rule,
    SourceFile,
    all_rules,
    lint_paths,
    register,
)
from repro.lint.report import render_json, render_text

__all__ = [
    "Finding",
    "LintEngine",
    "LintReport",
    "ProjectIndex",
    "Rule",
    "SourceFile",
    "all_rules",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
]
