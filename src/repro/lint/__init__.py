"""Protocol linter: AST-based static verification of the paper's discipline.

The bounds of Dolev & Reischuk only hold for algorithms that are
*deterministic* correctness rules with *declared* message/signature/phase
budgets.  The runtime conformance checker (:mod:`repro.core.conformance`)
can only catch a violation a simulation happens to exercise; this package
checks the discipline statically, before anything runs.

Rule catalogue (each encodes a paper invariant — see README "Static
analysis"):

* **BA001** — no nondeterminism in protocol code (``random``, wall-clock
  time, ``os.urandom``, unordered ``set`` iteration).
* **BA002** — every ``AgreementAlgorithm`` subclass declares
  ``message_bound``/``phase_bound`` (and ``signature_bound`` when
  authenticated), cross-checked against :mod:`repro.bounds.formulas`.
* **BA003** — all signing authority flows through the runner:
  no ``SignatureService``/``SigningKey`` construction in algorithm modules.
* **BA004** — received :class:`~repro.core.message.Envelope` objects are
  never mutated (tamper-proof histories).
* **BA005** — no bare dict-order fan-out in protocol hot paths without a
  sorted key.
* **BA006** — a processor's statically-resolvable per-phase send fan-out
  must fit the declared whole-run ``message_bound``.
* **BA007** — same accounting for signing sites vs. ``signature_bound``.
* **BA008** — unverified relayed payloads (taint from inbox reads) must
  not reach decision state in authenticated algorithms.
* **BA009** — no shared-state mutation reachable from the parallel sweep
  worker entry points.
* **BA100** — (notice) ``# noqa: BA00x`` comments that suppress nothing.

BA006-BA009 are whole-program analyses built on the protocol call graph
in :mod:`repro.lint.analysis`.

Run it as ``repro lint [paths] [--format=text|json|sarif]``; see
``repro lint --explain BA006`` for any rule's rationale, and
``--baseline lint_baseline.json`` for the grandfathering CI gate.
"""

from repro.lint.baseline import (
    BaselineEntry,
    BaselineError,
    BaselineResult,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    Finding,
    LintEngine,
    LintReport,
    ProjectIndex,
    Rule,
    SourceFile,
    all_rules,
    lint_paths,
    register,
)
from repro.lint.report import explain_rule, render_json, render_sarif, render_text

__all__ = [
    "BaselineEntry",
    "BaselineError",
    "BaselineResult",
    "Finding",
    "LintEngine",
    "LintReport",
    "ProjectIndex",
    "Rule",
    "SourceFile",
    "all_rules",
    "apply_baseline",
    "explain_rule",
    "lint_paths",
    "load_baseline",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
