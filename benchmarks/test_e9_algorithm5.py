"""E9 — Lemma 5 / Theorem 7: Algorithm 5's O(t² + nt/s) messages.

Paper claims: with 1 ≤ s ≤ t < n/6, Algorithm 5 reaches BA in ≈ 3t + 4s
phases and O(t² + nt/s) messages; choosing s = t yields O(n + t²) — tight
against Theorem 2 for every ratio of n to t.

Measured here: messages / (t² + nt/s) bounded across the sweep; at s = t,
messages / (n + t²) bounded as n grows; adversarial runs (faulty roots and
internal tree nodes) stay within the declared bound.
"""

from benchmarks._harness import run_once, show
from repro.adversary.standard import SilentAdversary
from repro.algorithms.algorithm5 import Algorithm5
from repro.bounds.formulas import lemma5_message_scale, theorem7_message_scale
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def test_e9_lemma5_sweep(benchmark):
    def workload():
        rows = []
        for t in (1, 2, 3):
            alpha = Algorithm5(6 * t + 30, t).alpha
            for n in (alpha + 10, alpha + 40):
                for s in (1, t, 2 * t + 1):
                    algorithm = Algorithm5(n, t, s=s)
                    result = run(algorithm, 1, record_history=False)
                    assert check_byzantine_agreement(result).ok
                    scale = lemma5_message_scale(n, t, s)
                    rows.append(
                        {
                            "n": n,
                            "t": t,
                            "s": s,
                            "alpha": algorithm.alpha,
                            "messages": result.metrics.messages_by_correct,
                            "t²+nt/s": scale,
                            "ratio": result.metrics.messages_by_correct / scale,
                            "phases": algorithm.num_phases(),
                        }
                    )
        return rows

    rows = run_once(benchmark, workload)
    show("E9 / Lemma 5 — Algorithm 5 message sweep", rows)
    # the O(t² + nt/s) claim: a fixed constant covers the whole sweep.
    assert max(row["ratio"] for row in rows) <= 40.0, rows


def test_e9_theorem7_optimality_at_s_equals_t(benchmark):
    def workload():
        rows = []
        for t in (2, 3):
            alpha = Algorithm5(6 * t + 30, t).alpha
            for n in (alpha, alpha + 30, alpha + 90, alpha + 210):
                algorithm = Algorithm5(n, t)  # s = t (Theorem 7)
                result = run(algorithm, 1, record_history=False)
                assert check_byzantine_agreement(result).ok
                scale = theorem7_message_scale(n, t)
                rows.append(
                    {
                        "t": t,
                        "n": n,
                        "messages": result.metrics.messages_by_correct,
                        "n + t²": scale,
                        "ratio": result.metrics.messages_by_correct / scale,
                    }
                )
        return rows

    rows = run_once(benchmark, workload)
    show("E9 / Theorem 7 — Algorithm 5 at s = t is O(n + t²)", rows)
    assert max(row["ratio"] for row in rows) <= 40.0, rows
    # the ratio must not grow with n (fixed t).  The n = α point is
    # degenerate (no trees at all), so the series starts after it.
    for t in (2, 3):
        series = [row["ratio"] for row in rows if row["t"] == t][1:]
        assert all(b <= a + 0.5 for a, b in zip(series, series[1:])), series


def test_e9_adversarial_tree_faults(benchmark):
    def workload():
        rows = []
        t, s = 2, 3
        n = 50
        base = Algorithm5(n, t, s=s)
        scenarios = [
            ("fault-free", None),
            ("silent roots", SilentAdversary([tree.root() for tree in base.forest.trees[:t]])),
            ("silent internal", SilentAdversary([base.forest.trees[0].processor_at(2), base.forest.trees[1].processor_at(3)])),
        ]
        for name, adversary in scenarios:
            result = run(Algorithm5(n, t, s=s), 1, adversary)
            report = check_byzantine_agreement(result)
            rows.append(
                {
                    "scenario": name,
                    "messages": result.metrics.messages_by_correct,
                    "bound": base.upper_bound_messages(),
                    "agreement": report.ok,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E9 / Lemma 5 — Algorithm 5 under tree faults", rows)
    for row in rows:
        assert row["agreement"], row
        assert row["messages"] <= row["bound"], row
