"""E10 — the introduction's phases/messages trade-off.

Paper claim: for n much larger than t there is a solution with
``t + 3 + t/α`` phases and ``O(αn)`` messages for ``1 ≤ α ≤ t`` —
Algorithm 3 with chain sets of size ``s = ⌈t/α⌉``.  Sweeping α traces a
frontier: more phases buy fewer messages.

Algorithm 5's ``s`` sweep shows the same trade-off at the O(n + t²) end.
"""

import math
from functools import partial

from benchmarks._harness import grid_points, run_once, show
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5


def test_e10_algorithm3_alpha_frontier(benchmark):
    def workload():
        t, n = 4, 200
        grid = [
            ({"alpha": alpha, "s": math.ceil(t / alpha)},
             partial(Algorithm3, n, t, s=math.ceil(t / alpha)))
            for alpha in (1, 2, 4)
        ]
        rows = []
        for point in grid_points(grid, values=(1,)):
            assert point.agreement_ok
            alpha = point.param("alpha")
            rows.append(
                {
                    "alpha": alpha,
                    "s=⌈t/α⌉": point.param("s"),
                    "phases": point.phases_configured,
                    "messages": point.messages,
                    "αn scale": alpha * n,
                    "msgs/αn": point.messages / (alpha * n),
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E10 — Algorithm 3 trade-off: phases vs messages over α", rows)
    phases = [row["phases"] for row in rows]
    messages = [row["messages"] for row in rows]
    # larger α: fewer phases...
    assert all(b <= a for a, b in zip(phases, phases[1:])), phases
    # ...at larger message cost.
    assert all(b >= a for a, b in zip(messages, messages[1:])), messages
    # and the O(αn) scale holds with a uniform constant.
    assert max(row["msgs/αn"] for row in rows) <= 8.0, rows


def test_e10_algorithm5_s_frontier(benchmark):
    def workload():
        t, n = 2, 120
        grid = [
            ({"s": s}, partial(Algorithm5, n, t, s=s)) for s in (1, 3, 7, 15)
        ]
        rows = []
        for point in grid_points(grid, values=(1,)):
            assert point.agreement_ok
            rows.append(
                {
                    "s": point.param("s"),
                    "phases": point.phases_configured,
                    "messages": point.messages,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E10 — Algorithm 5 trade-off: phases vs messages over s", rows)
    phases = [row["phases"] for row in rows]
    messages = [row["messages"] for row in rows]
    assert all(b > a for a, b in zip(phases, phases[1:])), phases
    assert all(b < a for a, b in zip(messages, messages[1:])), messages
