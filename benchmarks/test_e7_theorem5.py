"""E7 — Theorem 5: Algorithm 3 with s = 4t sends O(n + t³) messages.

Measured here: messages / (n + t³) stays bounded by a fixed constant as n
grows — the honest empirical reading of an O-bound — and the count is
*linear in n* for fixed t (the paper's headline for n ≥ t³).

The (t, n) grid runs through the parallel sweep executor
(:func:`benchmarks._harness.grid_points`), so the full-resolution grid
scales with the core count.
"""

from functools import partial

from benchmarks._harness import grid_points, run_once, show
from repro.algorithms.algorithm3 import Algorithm3


def test_e7_linear_in_n(benchmark):
    def workload():
        grid = [
            ({"t": t, "n": n}, partial(Algorithm3, n, t))  # default s = 4t (Theorem 5)
            for t in (1, 2)
            for n in (20, 60, 120, 240)
        ]
        rows = []
        for point in grid_points(grid, values=(1,)):
            assert point.agreement_ok
            scale = point.n + point.t**3
            rows.append(
                {
                    "t": point.t,
                    "n": point.n,
                    "s=4t": 4 * point.t,
                    "messages": point.messages,
                    "n + t³": scale,
                    "ratio": point.messages / scale,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E7 / Theorem 5 — Algorithm 3 at s = 4t is O(n + t³)", rows)
    assert max(row["ratio"] for row in rows) <= 8.0, rows
    # linearity: per-processor marginal cost is constant in n for fixed t.
    for t in (1, 2):
        series = [row for row in rows if row["t"] == t]
        marginal = [
            (b["messages"] - a["messages"]) / (b["n"] - a["n"])
            for a, b in zip(series, series[1:])
        ]
        assert max(marginal) - min(marginal) <= 2.0, marginal
