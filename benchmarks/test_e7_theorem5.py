"""E7 — Theorem 5: Algorithm 3 with s = 4t sends O(n + t³) messages.

Measured here: messages / (n + t³) stays bounded by a fixed constant as n
grows — the honest empirical reading of an O-bound — and the count is
*linear in n* for fixed t (the paper's headline for n ≥ t³).
"""

from benchmarks._harness import run_once, show
from repro.algorithms.algorithm3 import Algorithm3
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def test_e7_linear_in_n(benchmark):
    def workload():
        rows = []
        for t in (1, 2):
            for n in (20, 60, 120, 240):
                algorithm = Algorithm3(n, t)  # default s = 4t (Theorem 5)
                result = run(algorithm, 1, record_history=False)
                assert check_byzantine_agreement(result).ok
                scale = n + t**3
                rows.append(
                    {
                        "t": t,
                        "n": n,
                        "s=4t": algorithm.s,
                        "messages": result.metrics.messages_by_correct,
                        "n + t³": scale,
                        "ratio": result.metrics.messages_by_correct / scale,
                    }
                )
        return rows

    rows = run_once(benchmark, workload)
    show("E7 / Theorem 5 — Algorithm 3 at s = 4t is O(n + t³)", rows)
    assert max(row["ratio"] for row in rows) <= 8.0, rows
    # linearity: per-processor marginal cost is constant in n for fixed t.
    for t in (1, 2):
        series = [row for row in rows if row["t"] == t]
        marginal = [
            (b["messages"] - a["messages"]) / (b["n"] - a["n"])
            for a, b in zip(series, series[1:])
        ]
        assert max(marginal) - min(marginal) <= 2.0, marginal
