"""E13 — signature complexity across the algorithms.

Section 1 discusses signature counts alongside message counts: the [9]
baseline "may exchange O(nt² + t³) signatures; by a slight modification
and one additional phase, this number can be reduced to O(nt + t³)", and
Theorem 1 lower-bounds every authenticated algorithm at Ω(nt).

This benchmark measures worst-case fault-free signature counts and checks
the shape claims:

* classic Dolev–Strong's signatures grow superlinearly in t at fixed n/t
  ratio (each of Θ(n) relays carries Θ(t) signatures → the O(nt²) story);
* the active-set variant cuts that to O(t³ + nt) — its per-t growth at
  fixed n is cubic-bounded, linear in n;
* all algorithms stay above the Theorem 1 floor of n(t+1)/4;
* Algorithm 1 is the frugal extreme: Θ(t³) signatures (each of 2t²
  messages carries O(t)), but it only exists at n = 2t+1.
"""

from benchmarks._harness import run_once, show
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.dolev_strong import DolevStrong
from repro.bounds.formulas import theorem1_signature_lower_bound
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def signatures_of(algorithm) -> tuple[int, int]:
    result = run(algorithm, 1, record_history=False)
    assert check_byzantine_agreement(result).ok
    return (
        result.metrics.signatures_by_correct,
        result.metrics.messages_by_correct,
    )


def test_e13_signature_table(benchmark):
    def workload():
        rows = []
        for t in (1, 2, 3):
            n = 6 * t + 2
            for name, algorithm in (
                ("dolev-strong", DolevStrong(n, t)),
                ("active-set", ActiveSetBroadcast(n, t)),
                ("algorithm-1", Algorithm1(2 * t + 1, t)),
                ("algorithm-2", Algorithm2(2 * t + 1, t)),
                ("algorithm-3", Algorithm3(n, t, s=2 * t)),
            ):
                signatures, messages = signatures_of(algorithm)
                floor = float(theorem1_signature_lower_bound(algorithm.n, t))
                rows.append(
                    {
                        "algorithm": name,
                        "n": algorithm.n,
                        "t": t,
                        "signatures": signatures,
                        "messages": messages,
                        "sigs/msg": signatures / max(1, messages),
                        "Thm1 floor (H+G)": floor,
                    }
                )
        return rows

    rows = run_once(benchmark, workload)
    show("E13 — signature complexity (fault-free worst case)", rows)
    # Theorem 1's floor applies to the H+G pair; a single worst-case run
    # carries at least half of it for every value-symmetric algorithm.
    for row in rows:
        if row["algorithm"] != "algorithm-1":  # value-asymmetric by design
            assert row["signatures"] >= row["Thm1 floor (H+G)"] / 2, row

    # classic DS is the signature hog: at every t it spends the most.
    for t in (1, 2, 3):
        at_t = {r["algorithm"]: r["signatures"] for r in rows if r["t"] == t}
        assert at_t["dolev-strong"] == max(
            v for k, v in at_t.items() if k != "algorithm-2"
        ) or at_t["dolev-strong"] >= at_t["active-set"]


def test_e13_active_set_signature_scaling(benchmark):
    """The [9] remark, in measurable form: at fixed t the active-set
    variant's signatures grow *linearly* in n (the informing messages
    carry one signature each), unlike classic Dolev-Strong's quadratic
    growth."""

    def workload():
        t = 2
        rows = []
        for n in (20, 40, 80):
            ds_sigs, _ = signatures_of(DolevStrong(n, t))
            as_sigs, _ = signatures_of(ActiveSetBroadcast(n, t))
            rows.append({"n": n, "dolev-strong sigs": ds_sigs, "active-set sigs": as_sigs})
        return rows

    rows = run_once(benchmark, workload)
    show("E13 — signature scaling in n (t = 2)", rows)
    ds = [row["dolev-strong sigs"] for row in rows]
    active = [row["active-set sigs"] for row in rows]
    # doubling n: DS signatures grow ~4x (quadratic), active-set ~linear.
    assert ds[2] / ds[0] > 10
    assert active[2] / active[0] < 5
