"""E5 — Theorem 4: Algorithm 2 and the transferable proof.

Paper claim: 3t+3 phases, at most 5t² + 5t messages, and afterwards every
correct processor holds the common value with ≥ t signatures of other
processors appended — while no message with t+1 signatures can exist for
any other value.
"""

from benchmarks._harness import run_once, show
from repro.adversary.standard import EquivocatingTransmitter, SilentAdversary
from repro.algorithms.algorithm2 import Algorithm2
from repro.bounds.formulas import theorem4_message_upper_bound, theorem4_phases
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def test_e5_message_and_proof_table(benchmark):
    def workload():
        rows = []
        for t in range(1, 7):
            n = 2 * t + 1
            for value in (0, 1):
                result = run(Algorithm2(n, t), value)
                assert check_byzantine_agreement(result).ok
                proofs = sum(
                    1 for p in result.processors.values() if p.has_agreement_proof()
                )
                rows.append(
                    {
                        "t": t,
                        "n": n,
                        "value": value,
                        "messages": result.metrics.messages_by_correct,
                        "bound 5t²+5t": theorem4_message_upper_bound(t),
                        "phases": theorem4_phases(t),
                        "proofs": f"{proofs}/{n}",
                    }
                )
        return rows

    rows = run_once(benchmark, workload)
    show("E5 / Theorem 4 — Algorithm 2 messages and proof possession", rows)
    for row in rows:
        assert row["messages"] <= row["bound 5t²+5t"], row
        if row["value"] == 1:
            assert row["messages"] == row["bound 5t²+5t"], row
        n = row["n"]
        assert row["proofs"] == f"{n}/{n}", row


def test_e5_proofs_survive_adversaries(benchmark):
    def workload():
        rows = []
        for t in (2, 3):
            n = 2 * t + 1
            adversaries = [
                ("silent-B", SilentAdversary(list(range(t + 1, n))), 1),
                (
                    "equivocate",
                    EquivocatingTransmitter(0, {q: (1 if q <= t else 0) for q in range(1, n)}),
                    0,
                ),
            ]
            for name, adversary, value in adversaries:
                result = run(Algorithm2(n, t), value, adversary)
                report = check_byzantine_agreement(result)
                proofs = all(
                    p.has_agreement_proof() for p in result.processors.values()
                )
                rows.append(
                    {
                        "t": t,
                        "adversary": name,
                        "agreement": report.ok,
                        "all correct hold proofs": proofs,
                        "messages": result.metrics.messages_by_correct,
                        "bound": theorem4_message_upper_bound(t),
                    }
                )
        return rows

    rows = run_once(benchmark, workload)
    show("E5 / Theorem 4 — proof possession under adversaries", rows)
    for row in rows:
        assert row["agreement"] and row["all correct hold proofs"], row
        assert row["messages"] <= row["bound"], row
