"""E14 — phase complexity across the algorithms.

The paper's other cost axis.  Known bounds: ``t + 1`` phases is optimal
for any BA algorithm (Fischer–Lynch [11], cited in Section 1); the paper's
algorithms deliberately spend extra phases to save messages.

This benchmark verifies every implementation's phase count against its
declared formula, confirms no correct processor ever sends after the last
declared phase (the runner would count it), and regenerates the
phases-vs-messages landscape the introduction describes.
"""

from benchmarks._harness import run_once, show
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.informed import InformedAlgorithm2
from repro.algorithms.oral_messages import OralMessages
from repro.bounds import formulas
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def test_e14_phase_formula_table(benchmark):
    def workload():
        t = 3
        n = 20
        cases = [
            ("oral-messages", OralMessages(n, t), t + 1, "t+1 (optimal [11])"),
            ("dolev-strong", DolevStrong(n, t), t + 1, "t+1 (optimal [11])"),
            ("active-set", ActiveSetBroadcast(n, t), t + 2, "t+2"),
            ("algorithm-1", Algorithm1(2 * t + 1, t), formulas.theorem3_phases(t), "t+2"),
            ("algorithm-2", Algorithm2(2 * t + 1, t), formulas.theorem4_phases(t), "3t+3"),
            ("informed-A2", InformedAlgorithm2(n, t), 3 * t + 4, "3t+4"),
            (
                "algorithm-3",
                Algorithm3(n, t, s=4),
                formulas.lemma1_phases(t, 4),
                "t+2s+3",
            ),
            (
                # n > α so the tree blocks actually exist (at n = α the
                # schedule collapses to 3t+5 phases).
                "algorithm-5",
                Algorithm5(40, t, s=3),
                formulas.our_algorithm5_phase_bound(t, 3),
                "~3t+4s (Lemma 5: 3t+4s+2)",
            ),
        ]
        rows = []
        for name, algorithm, expected, formula in cases:
            result = run(algorithm, 1, record_history=False)
            assert check_byzantine_agreement(result).ok
            rows.append(
                {
                    "algorithm": name,
                    "declared phases": algorithm.num_phases(),
                    "expected": expected,
                    "formula": formula,
                    "last active phase": result.metrics.last_active_phase,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E14 — phase complexity (t = 3)", rows)
    for row in rows:
        assert row["declared phases"] == row["expected"], row
        assert row["last active phase"] <= row["declared phases"], row


def test_e14_phase_message_landscape(benchmark):
    """The introduction's landscape: phase-optimal algorithms pay in
    messages; message-optimal algorithms pay in phases — no algorithm in
    the table wins both axes (the trade-off is real)."""

    def workload():
        t, n = 2, 60
        rows = []
        for name, algorithm in (
            ("dolev-strong", DolevStrong(n, t)),
            ("active-set", ActiveSetBroadcast(n, t)),
            ("informed-A2", InformedAlgorithm2(n, t)),
            ("algorithm-3 s=4t", Algorithm3(n, t)),
            ("algorithm-5 s=t", Algorithm5(n, t)),
            ("algorithm-5 s=7", Algorithm5(n, t, s=7)),
        ):
            result = run(algorithm, 1, record_history=False)
            assert check_byzantine_agreement(result).ok
            rows.append(
                {
                    "algorithm": name,
                    "phases": algorithm.num_phases(),
                    "messages": result.metrics.messages_by_correct,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E14 — the phases/messages landscape (n = 60, t = 2)", rows)
    # Pareto check: nobody dominates everybody on both axes.
    for row in rows:
        dominated_by_all = all(
            other is row
            or (
                other["phases"] <= row["phases"]
                and other["messages"] <= row["messages"]
            )
            for other in rows
        )
        assert not dominated_by_all or row is min(
            rows, key=lambda r: (r["phases"], r["messages"])
        )
    fastest = min(rows, key=lambda r: r["phases"])
    leanest = min(rows, key=lambda r: r["messages"])
    assert fastest is not leanest
