"""E8 — Theorem 6 / Lemma 2: the 3-phase grid exchange.

Paper claims: N = m² processors mutually exchange values in 3 phases and
at most 3(m−1)m² = O(N^1.5) messages such that ≥ N − 2t correct processors
(those with < m/2 faulty row-mates) succeed completely; and the count
undercuts the Θ(Nt) hub-relay solution once t ≳ √N.
"""

from benchmarks._harness import run_once, show
from repro.adversary.standard import SilentAdversary
from repro.algorithms.algorithm4 import Algorithm4, check_lemma2
from repro.bounds.formulas import theorem6_message_upper_bound
from repro.core.runner import run


def values_for(n: int) -> dict:
    return {pid: ("v", pid) for pid in range(n)}


def test_e8_exchange_costs_and_success_set(benchmark):
    def workload():
        rows = []
        for m in (2, 3, 4, 5, 6):
            n = m * m
            t = max(1, m // 2)
            algorithm = Algorithm4(m, t, values_for(n))
            fault_free = run(algorithm, 0)
            p_free, violations_free = check_lemma2(fault_free, algorithm)
            # worst case for Lemma 2: all faults packed into one row.
            packed = SilentAdversary(list(range(t)))
            faulty_run = run(Algorithm4(m, t, values_for(n)), 0, packed)
            p_faulty, violations_faulty = check_lemma2(faulty_run, algorithm)
            rows.append(
                {
                    "m": m,
                    "N": n,
                    "t": t,
                    "messages": fault_free.metrics.messages_by_correct,
                    "bound 3(m-1)m²": theorem6_message_upper_bound(m),
                    "|P| fault-free": len(p_free),
                    "|P| packed-row": len(p_faulty),
                    "N-2t": n - 2 * t,
                    "lemma2 ok": not (violations_free or violations_faulty),
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E8 / Theorem 6 — Algorithm 4 grid exchange", rows)
    for row in rows:
        assert row["messages"] == row["bound 3(m-1)m²"], row
        assert row["|P| fault-free"] == row["N"], row
        assert row["|P| packed-row"] >= row["N-2t"], row
        assert row["lemma2 ok"], row


def test_e8_crossover_against_hub_relay(benchmark):
    """Where the O(N^1.5) exchange beats the hub relay of Section 6 —
    both *measured* (the hub is implemented in
    :mod:`repro.algorithms.hub_exchange`): the crossover sits near
    t ≈ 1.5·√N."""
    from repro.algorithms.hub_exchange import HubExchange

    def workload():
        rows = []
        for m in (3, 4, 5, 6, 8):
            n = m * m
            grid_cost = run(
                Algorithm4(m, 1, values_for(n)), 0, record_history=False
            ).metrics.messages_by_correct
            crossover = None
            for t in range(1, n - 1):
                hub_cost = run(
                    HubExchange(n, t, values_for(n)), 0, record_history=False
                ).metrics.messages_by_correct
                if grid_cost < hub_cost:
                    crossover = t
                    break
            rows.append(
                {
                    "m": m,
                    "N": n,
                    "grid messages (measured)": grid_cost,
                    "crossover t (measured)": crossover,
                    "1.5·√N": 1.5 * m,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E8 / Theorem 6 — crossover vs the hub relay (both measured)", rows)
    for row in rows:
        assert row["crossover t (measured)"] is not None, row
        assert row["crossover t (measured)"] <= row["1.5·√N"] + 1, row
