"""E12 (ablation) — how to tell n − O(t) passive processors the value.

Every algorithm past Section 4 is, at heart, a strategy for informing the
passive majority after a small core has agreed.  This ablation isolates
that design choice at fixed (n, t) and measures it fault-free and under
faults aimed at each strategy's weak spot:

* **direct fan-out** (active-set [9]): all 2t+1 actives tell everyone —
  O(nt), completely insensitive to faults;
* **proof fan-out** (Section 5's remedy): only t+1 actives send, but each
  message carries a t+1-signature proof — O(n), also fault-insensitive;
* **chain sets** (Algorithm 3): roots walk their sets sequentially —
  O(n + tn/s) fault-free, paying 3t²s when roots are faulty;
* **trees + proofs of work** (Algorithm 5): recursive activation —
  O(t² + nt/s) with the faulty surcharge bounded by Lemma 4.

The proof fan-out wins on raw message count — its cost is signature
*volume* (every informing message carries ≥ t+1 signatures) and the fact
that it needs the Algorithm 2 core (n = 2t+1 agreement) to exist at all;
the paper's Algorithm 5 is what keeps O(n + t²) while letting signatures
be spread over the tree walk.
"""

from benchmarks._harness import run_once, show
from repro.adversary.standard import SilentAdversary
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.informed import InformedAlgorithm2
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def measure(algorithm, adversary=None):
    result = run(algorithm, 1, adversary, record_history=False)
    assert check_byzantine_agreement(result).ok
    return result.metrics


def worst_faults(algorithm):
    """Faults aimed at the informing structure: silent chain/tree roots
    where such roots exist, silent actives otherwise."""
    if isinstance(algorithm, Algorithm3):
        return SilentAdversary([cs.root for cs in algorithm.sets[: algorithm.t]])
    if isinstance(algorithm, Algorithm5):
        return SilentAdversary(
            [tree.root() for tree in algorithm.forest.trees[: algorithm.t]]
        )
    return SilentAdversary(list(range(1, algorithm.t + 1)))


def test_e12_informing_strategies(benchmark):
    def workload():
        n, t = 120, 3
        strategies = [
            ("direct fan-out (active-set)", lambda: ActiveSetBroadcast(n, t)),
            ("proof fan-out (informed-A2)", lambda: InformedAlgorithm2(n, t)),
            ("chain sets (algorithm-3)", lambda: Algorithm3(n, t, s=4 * t)),
            ("trees (algorithm-5)", lambda: Algorithm5(n, t, s=t)),
        ]
        rows = []
        for name, factory in strategies:
            clean = measure(factory())
            faulty = measure(factory(), worst_faults(factory()))
            rows.append(
                {
                    "strategy": name,
                    "phases": factory().num_phases(),
                    "msgs clean": clean.messages_by_correct,
                    "msgs faulty": faulty.messages_by_correct,
                    "fault surcharge": faulty.messages_by_correct
                    - clean.messages_by_correct,
                    "sigs clean": clean.signatures_by_correct,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E12 (ablation) — informing the passive processors (n=120, t=3)", rows)
    by_name = {row["strategy"]: row for row in rows}

    # the proof fan-out undercuts the direct fan-out by roughly (2t+1)/(t+1):
    direct = by_name["direct fan-out (active-set)"]
    proof = by_name["proof fan-out (informed-A2)"]
    assert proof["msgs clean"] < direct["msgs clean"]

    # chains beat both fan-outs fault-free but pay a surcharge under
    # faulty roots; the fan-outs' surcharge is non-positive (silent
    # actives send nothing).
    chains = by_name["chain sets (algorithm-3)"]
    assert chains["msgs clean"] < proof["msgs clean"]
    assert chains["fault surcharge"] > 0
    assert direct["fault surcharge"] <= 0

    # signature volume tells the opposite story: proof fan-out's messages
    # are the heaviest per message among the fan-outs.
    assert proof["sigs clean"] > direct["sigs clean"]


def test_e12_core_cost_vs_informing_cost(benchmark):
    """Split Algorithm 3's bill into core (first t+2+… phases) and
    informing (the rest): the core is O(t²) and the informing dominates —
    which is why the paper's lower-bound story is about informing."""

    def workload():
        t = 3
        rows = []
        for n in (40, 120, 360):
            algorithm = Algorithm3(n, t, s=4 * t)
            result = run(algorithm, 1, record_history=False)
            assert check_byzantine_agreement(result).ok
            core_phases = range(1, t + 3)
            core = sum(
                result.metrics.messages_per_phase[p] for p in core_phases
            )
            total = result.metrics.messages_by_correct
            rows.append(
                {
                    "n": n,
                    "core msgs (phases 1..t+2)": core,
                    "informing msgs": total - core,
                    "total": total,
                    "informing share": (total - core) / total,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E12 (ablation) — core vs informing cost (Algorithm 3, t=3)", rows)
    cores = [row["core msgs (phases 1..t+2)"] for row in rows]
    assert len(set(cores)) == 1, cores  # core cost independent of n
    shares = [row["informing share"] for row in rows]
    assert all(b > a for a, b in zip(shares, shares[1:])), shares
