"""E15 — breadth evidence for the upper bounds: adversary probing.

The hand-built worst cases (E4–E9) are each one scenario; this experiment
probes every algorithm with a structured family of adversaries — dozens of
fault placements × four behaviours × both values — and checks that

* agreement holds in every probed scenario, and
* no probed scenario exceeds the paper's message bound.

The costliest scenario found per algorithm is reported; for Algorithm 1
it must be the fault-free value-1 history (Theorem 3's bound is tight
there), while for Algorithm 3 it must be an *adversarial* scenario (the
3t²s faulty-root term of Lemma 1 is real).
"""

from benchmarks._harness import run_once, show
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.analysis.search import worst_case_probe

CASES = [
    ("algorithm-1", lambda: Algorithm1(7, 3)),
    ("algorithm-2", lambda: Algorithm2(7, 3)),
    ("active-set", lambda: ActiveSetBroadcast(14, 2)),
    ("algorithm-3", lambda: Algorithm3(16, 2, s=3)),
    ("algorithm-5", lambda: Algorithm5(24, 2, s=3)),
]


def test_e15_probe_every_algorithm(benchmark):
    def workload():
        rows = []
        for name, factory in CASES:
            worst, results = worst_case_probe(factory, samples=8, seed=42)
            bound = factory().upper_bound_messages()
            fault_free = max(
                r.messages for r in results if r.adversary == "fault-free"
            )
            rows.append(
                {
                    "algorithm": name,
                    "scenarios probed": len(results),
                    "worst messages": worst.messages,
                    "paper bound": bound,
                    "fault-free worst": fault_free,
                    "worst adversary": worst.adversary[:32],
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E15 — worst-case probing (agreement held in every scenario)", rows)
    for row in rows:
        assert row["worst messages"] <= row["paper bound"], row
    by_name = {row["algorithm"]: row for row in rows}
    # Theorem 3 is tight at the fault-free value-1 history:
    assert by_name["algorithm-1"]["worst adversary"] == "fault-free"
    assert (
        by_name["algorithm-1"]["worst messages"]
        == by_name["algorithm-1"]["fault-free worst"]
    )
    # Lemma 1's faulty surcharge is real:
    assert (
        by_name["algorithm-3"]["worst messages"]
        > by_name["algorithm-3"]["fault-free worst"]
    )
