"""E4 — Theorem 3: Algorithm 1 for n = 2t+1.

Paper claim: a (t+2)-phase authenticated algorithm for n = 2t+1 sending at
most 2t² + 2t messages.

Measured here: the fault-free value-1 history hits the bound *exactly*
(it is the worst case); value 0 costs only the transmitter's broadcast;
adversarial runs stay under the bound and reach agreement.
"""

from benchmarks._harness import run_once, show
from repro.adversary.standard import EquivocatingTransmitter, SilentAdversary
from repro.algorithms.algorithm1 import Algorithm1
from repro.bounds.formulas import theorem3_message_upper_bound, theorem3_phases
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def test_e4_worst_case_message_table(benchmark):
    def workload():
        rows = []
        for t in range(1, 9):
            n = 2 * t + 1
            for value in (0, 1):
                result = run(Algorithm1(n, t), value)
                assert check_byzantine_agreement(result).ok
                rows.append(
                    {
                        "t": t,
                        "n": n,
                        "value": value,
                        "messages": result.metrics.messages_by_correct,
                        "bound 2t²+2t": theorem3_message_upper_bound(t),
                        "phases": theorem3_phases(t),
                        "signatures": result.metrics.signatures_by_correct,
                    }
                )
        return rows

    rows = run_once(benchmark, workload)
    show("E4 / Theorem 3 — Algorithm 1 message counts", rows)
    for row in rows:
        assert row["messages"] <= row["bound 2t²+2t"], row
        if row["value"] == 1:
            assert row["messages"] == row["bound 2t²+2t"], row
        else:
            assert row["messages"] == 2 * row["t"], row


def test_e4_adversarial_runs_within_bound(benchmark):
    def workload():
        rows = []
        for t in (2, 3, 4):
            n = 2 * t + 1
            adversaries = [
                ("equivocate", EquivocatingTransmitter(0, {q: q % 2 for q in range(1, n)}), 0),
                ("silent-A", SilentAdversary(list(range(1, t + 1))), 1),
            ]
            for name, adversary, value in adversaries:
                result = run(Algorithm1(n, t), value, adversary)
                report = check_byzantine_agreement(result)
                rows.append(
                    {
                        "t": t,
                        "adversary": name,
                        "messages": result.metrics.messages_by_correct,
                        "bound": theorem3_message_upper_bound(t),
                        "agreement": report.ok,
                    }
                )
        return rows

    rows = run_once(benchmark, workload)
    show("E4 / Theorem 3 — Algorithm 1 under adversaries", rows)
    for row in rows:
        assert row["agreement"], row
        assert row["messages"] <= row["bound"], row
