"""E1 — Theorem 1: the Ω(nt) signature lower bound.

Paper claim: any authenticated BA algorithm has a fault-free history in
which correct processors send ≥ n(t+1)/4 signatures; equivalently, no
processor may exchange fewer than t+1 signatures across the fault-free
histories H and G — otherwise the splitting adversary breaks agreement.

Measured here: per-processor signature-exchange minima and two-history
signature totals for every authenticated algorithm, plus the executed
splitting attack against the under-signing strawman.
"""

from benchmarks._harness import run_once, show
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.cheap_strawman import UnderSigningBroadcast
from repro.algorithms.dolev_strong import DolevStrong
from repro.bounds.theorem1 import theorem1_experiment

CASES = [
    ("dolev-strong", lambda t: DolevStrong(4 * t + 2, t)),
    ("active-set", lambda t: ActiveSetBroadcast(4 * t + 2, t)),
    ("algorithm-1", lambda t: Algorithm1(2 * t + 1, t)),
    ("algorithm-2", lambda t: Algorithm2(2 * t + 1, t)),
    ("algorithm-3", lambda t: Algorithm3(4 * t + 2, t, s=2 * t)),
]


def test_e1_signature_budgets(benchmark):
    def workload():
        rows = []
        for name, factory in CASES:
            for t in (1, 2, 3):
                report = theorem1_experiment(lambda: factory(t))
                rows.append(
                    {
                        "algorithm": name,
                        "n": report.n,
                        "t": report.t,
                        "min |A(p)|": report.min_exchange,
                        "required": report.t + 1,
                        "sigs H+G": report.signatures_h + report.signatures_g,
                        "bound n(t+1)/4": float(report.bound),
                        "splittable": bool(report.weak_processors),
                    }
                )
        return rows

    rows = run_once(benchmark, workload)
    show("E1 / Theorem 1 — signature exchange vs the Ω(nt) bound", rows)
    for row in rows:
        assert row["min |A(p)|"] >= row["required"], row
        assert row["sigs H+G"] >= row["bound n(t+1)/4"], row
        assert not row["splittable"], row


def test_e1_splitting_attack_on_strawman(benchmark):
    def workload():
        rows = []
        for n, t in [(4, 1), (6, 2), (8, 3), (10, 4)]:
            report = theorem1_experiment(lambda: UnderSigningBroadcast(n, t))
            attack = report.attack
            rows.append(
                {
                    "n": n,
                    "t": t,
                    "weak processors": len(report.weak_processors),
                    "target": attack.target,
                    "view == pH": attack.target_view_matches_h,
                    "target decided": attack.target_decision,
                    "others decided": sorted(set(attack.other_decisions.values())),
                    "agreement broken": attack.agreement_violated,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E1 / Theorem 1 — splitting adversary vs the under-signing strawman", rows)
    for row in rows:
        assert row["view == pH"], row
        assert row["agreement broken"], row
