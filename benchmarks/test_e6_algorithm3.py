"""E6 — Lemma 1: Algorithm 3's 2n + 4tn/s + 3t²s message bound.

Paper claim: Algorithm 3 with chain sets of size s reaches BA in t+2s+3
phases with at most 2n + 4tn/s + 3t²s messages, including under its worst
case — faulty chain-set roots forcing the actives' direct deliveries.
"""

from benchmarks._harness import run_once, show
from repro.adversary.standard import SilentAdversary
from repro.algorithms.algorithm3 import Algorithm3
from repro.bounds.formulas import lemma1_message_upper_bound, lemma1_phases
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def faulty_roots(algorithm: Algorithm3) -> SilentAdversary:
    """The worst case of Lemma 1's accounting: silent roots, up to t."""
    roots = [cs.root for cs in algorithm.sets[: algorithm.t]]
    return SilentAdversary(roots)


def test_e6_lemma1_sweep(benchmark):
    def workload():
        rows = []
        for t in (1, 2, 3):
            for n in (4 * t + 2, 8 * t + 1, 40):
                if n < 2 * t + 1:
                    continue
                for s in sorted({1, 2, t + 1, 2 * t}):
                    algorithm = Algorithm3(n, t, s=s)
                    fault_free = run(algorithm, 1)
                    assert check_byzantine_agreement(fault_free).ok
                    adversarial = run(Algorithm3(n, t, s=s), 1, faulty_roots(algorithm))
                    assert check_byzantine_agreement(adversarial).ok
                    rows.append(
                        {
                            "n": n,
                            "t": t,
                            "s": s,
                            "msgs fault-free": fault_free.metrics.messages_by_correct,
                            "msgs faulty-roots": adversarial.metrics.messages_by_correct,
                            "bound 2n+4tn/s+3t²s": lemma1_message_upper_bound(n, t, s),
                            "phases": lemma1_phases(t, min(s, max(1, n - 2 * t - 1))),
                        }
                    )
        return rows

    rows = run_once(benchmark, workload)
    show("E6 / Lemma 1 — Algorithm 3 message sweep", rows)
    for row in rows:
        assert row["msgs fault-free"] <= row["bound 2n+4tn/s+3t²s"], row
        assert row["msgs faulty-roots"] <= row["bound 2n+4tn/s+3t²s"], row
