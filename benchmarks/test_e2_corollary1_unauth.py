"""E2 — Corollary 1: the unauthenticated message lower bound.

Paper claim: without authentication, n(t+1)/4 is a lower bound on the
number of *messages* (every message is worth exactly one signature — the
sender's implicit one).  The OM(t) baseline respects it with enormous room
to spare (exponential growth), which is the gap the paper's discussion of
[10] addresses: O(nt + t³) is optimal within a constant for n > t².
"""

from benchmarks._harness import run_once, show
from repro.algorithms.oral_messages import OralMessages
from repro.bounds.formulas import corollary1_message_lower_bound
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def test_e2_unauthenticated_message_counts(benchmark):
    def workload():
        rows = []
        for t in (1, 2, 3):
            n = 3 * t + 1
            algorithm = OralMessages(n, t)
            result = run(algorithm, 1)
            assert check_byzantine_agreement(result).ok
            rows.append(
                {
                    "n": n,
                    "t": t,
                    "messages": result.metrics.messages_by_correct,
                    "lower bound n(t+1)/4": float(corollary1_message_lower_bound(n, t)),
                    "closed form": algorithm.upper_bound_messages(),
                    "signatures": result.metrics.signatures_by_correct,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E2 / Corollary 1 — OM(t) messages vs the unauthenticated bound", rows)
    for row in rows:
        assert row["messages"] >= row["lower bound n(t+1)/4"], row
        assert row["messages"] == row["closed form"], row
        assert row["signatures"] == 0, row


def test_e2_exponential_vs_polynomial_gap(benchmark):
    """The shape claim behind citing [10]: OM(t)'s count explodes while the
    nt + t³ scale (the best unauthenticated bound) stays polynomial."""

    def workload():
        rows = []
        for t in (1, 2, 3, 4):
            n = 3 * t + 1
            om = OralMessages(n, t).upper_bound_messages()
            polynomial_scale = n * t + t**3
            rows.append(
                {
                    "t": t,
                    "n": n,
                    "OM(t) messages": om,
                    "nt + t^3 scale": polynomial_scale,
                    "ratio": om / polynomial_scale,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E2 — exponential OM(t) vs the polynomial optimum of [10]", rows)
    ratios = [row["ratio"] for row in rows]
    assert all(b > a for a, b in zip(ratios, ratios[1:])), ratios
