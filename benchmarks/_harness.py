"""Shared helpers for the experiment benchmarks.

Every ``benchmarks/test_eN_*.py`` regenerates one of the paper's results:
it sweeps the relevant parameters, prints the measured table next to the
paper's closed-form bound, and asserts that the claim's *shape* holds
(counts within bounds, ratios bounded, attacks succeeding/failing as the
theorems predict).

The benchmark fixture times a single representative execution per
experiment (``pedantic(rounds=1)``): these are worst-case-count
experiments, not throughput experiments, so one timed round is enough and
keeps ``pytest benchmarks/ --benchmark-only`` fast.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.analysis.parallel import (
    FAULT_FREE,
    AdversaryFactory,
    AlgorithmFactory,
    sweep_parallel,
)
from repro.analysis.sweep import SweepPoint
from repro.analysis.tables import format_table


def run_once(benchmark, workload: Callable[[], object]) -> object:
    """Execute *workload* exactly once under the benchmark timer."""
    return benchmark.pedantic(workload, rounds=1, iterations=1)


def grid_points(
    configurations: Iterable[tuple[Mapping[str, object], AlgorithmFactory]],
    values: Iterable[object] = (1,),
    adversaries: Iterable[tuple[str, AdversaryFactory | None]] = FAULT_FREE,
    *,
    workers: int | None = None,
) -> list[SweepPoint]:
    """Run one experiment grid through the parallel sweep executor.

    The point stream is identical to the serial ``sweep()`` over the same
    grid (see ``tests/analysis/test_parallel.py``); *workers* defaults to
    ``$REPRO_SWEEP_WORKERS`` or the CPU count, so the full-resolution
    benchmarks use every core available.
    """
    return sweep_parallel(configurations, values, adversaries, workers=workers)


def show(title: str, rows: Sequence[dict], columns: Sequence[str] | None = None) -> None:
    """Print one experiment table (visible with ``pytest -s`` and in the
    captured output of failing runs)."""
    print()
    print(format_table(rows, columns, title=title))
