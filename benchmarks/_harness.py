"""Shared helpers for the experiment benchmarks.

Every ``benchmarks/test_eN_*.py`` regenerates one of the paper's results:
it sweeps the relevant parameters, prints the measured table next to the
paper's closed-form bound, and asserts that the claim's *shape* holds
(counts within bounds, ratios bounded, attacks succeeding/failing as the
theorems predict).

The benchmark fixture times a single representative execution per
experiment (``pedantic(rounds=1)``): these are worst-case-count
experiments, not throughput experiments, so one timed round is enough and
keeps ``pytest benchmarks/ --benchmark-only`` fast.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.tables import format_table


def run_once(benchmark, workload: Callable[[], object]) -> object:
    """Execute *workload* exactly once under the benchmark timer."""
    return benchmark.pedantic(workload, rounds=1, iterations=1)


def show(title: str, rows: Sequence[dict], columns: Sequence[str] | None = None) -> None:
    """Print one experiment table (visible with ``pytest -s`` and in the
    captured output of failing runs)."""
    print()
    print(format_table(rows, columns, title=title))
