"""E11 — the paper's Section 1 comparison, regenerated.

The introduction compares: the best unauthenticated algorithm (exponential
OM(t) [14] as the runnable ancestor of [10]'s O(nt + t³)), the best
authenticated algorithm [9] (O(nt + t²) messages), and the paper's new
algorithms (O(n + t³) and O(n + t²)).

Two shape claims are verified:

* at moderate (n, t), Algorithm 3 already beats the [9]-style baselines,
  which beat classic Dolev–Strong, which beats OM(t) — and Algorithm 5's
  long messages carry far more signatures per message (the paper's remark
  that beating Ω(nt) messages forces Ω(t)-signature messages);
* Algorithm 5's *marginal* cost per additional processor undercuts the
  active-set baseline's once ``2α/s < 2t + 1`` (t ≥ 7 with s = t) — the
  asymptotic regime where O(n + t²) beats O(nt + t²).  The absolute
  crossover point sits at larger n because of Algorithm 5's fixed
  per-block gossip overhead; EXPERIMENTS.md discusses the constants.
"""

from functools import partial

from benchmarks._harness import grid_points, run_once, show
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.dolev_strong import DolevStrong
from repro.algorithms.oral_messages import OralMessages


def test_e11_comparison_table(benchmark):
    def workload():
        t, n = 2, 120
        grid = [
            ({"contender": name}, partial(build, n, t))
            for name, build in (
                ("oral-messages [14]", OralMessages),
                ("dolev-strong [9] classic", DolevStrong),
                ("active-set [9]", ActiveSetBroadcast),
                ("algorithm-3 (Thm 5)", Algorithm3),
                ("algorithm-5 (Thm 7)", Algorithm5),
            )
        ]
        rows = []
        for point in grid_points(grid, values=(1,)):
            assert point.agreement_ok
            rows.append(
                {
                    "algorithm": point.param("contender"),
                    "n": n,
                    "t": t,
                    "phases": point.phases_configured,
                    "messages": point.messages,
                    "signatures": point.signatures,
                    "sigs/msg": point.signatures / max(1, point.messages),
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E11 — Section 1 comparison at n = 120, t = 2", rows)
    by_name = {row["algorithm"]: row["messages"] for row in rows}
    assert by_name["algorithm-3 (Thm 5)"] < by_name["active-set [9]"]
    assert by_name["active-set [9]"] < by_name["dolev-strong [9] classic"]
    assert by_name["dolev-strong [9] classic"] < by_name["oral-messages [14]"]
    # beating Ω(nt) messages needs Ω(t)-signature messages (Section 4):
    density = {row["algorithm"]: row["sigs/msg"] for row in rows}
    assert density["algorithm-5 (Thm 7)"] > density["active-set [9]"]


def test_e11_marginal_cost_crossover(benchmark):
    """Algorithm 5's per-processor slope vs the [9] baseline's at t = 8
    (the first t where 2α/s < 2t + 1 comfortably holds with s = t)."""

    def workload():
        t = 8
        grid = [
            ({"family": name, "n": n}, partial(build, n, t))
            for n in (300, 700)
            for name, build in (
                ("active-set", ActiveSetBroadcast),
                ("algorithm-5", Algorithm5),
            )
        ]
        points = {300: {}, 700: {}}
        for point in grid_points(grid, values=(1,)):
            assert point.agreement_ok
            points[point.n][point.param("family")] = point.messages
        span = 700 - 300
        rows = []
        for name in ("active-set", "algorithm-5"):
            slope = (points[700][name] - points[300][name]) / span
            rows.append(
                {
                    "algorithm": name,
                    "msgs @ n=300": points[300][name],
                    "msgs @ n=700": points[700][name],
                    "marginal msgs per processor": slope,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E11 — marginal message cost per extra processor (t = 8)", rows)
    slopes = {row["algorithm"]: row["marginal msgs per processor"] for row in rows}
    # the paper's asymptotic claim, in measurable form: O(n + t²) grows
    # strictly more slowly in n than O(nt + t²).
    assert slopes["algorithm-5"] < slopes["active-set"], slopes
    # and the theoretical slopes bracket the measured ones.
    assert slopes["active-set"] >= 2 * 8 + 1 - 0.5
    alpha = Algorithm5(300, 8).alpha
    assert slopes["algorithm-5"] <= 2 * alpha / 8 + 4
