"""E3 — Theorem 2: the Ω(n + t²) message lower bound.

Paper claim: some history forces correct processors to send at least
max{(n−1)/2, (1+t/2)²} messages.  The proof's B-set history H' forces
every B member to *receive* ≥ ⌈1+t/2⌉ messages from correct processors.

Measured here: fault-free message counts vs the combined bound; per-B-
member received counts under the ignore-first adversary; and the executed
switch attack against the strawman.
"""

from benchmarks._harness import run_once, show
from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.cheap_strawman import UnderSigningBroadcast
from repro.algorithms.dolev_strong import DolevStrong
from repro.bounds.theorem2 import theorem2_experiment

CASES = [
    ("dolev-strong", lambda: DolevStrong(10, 3)),
    ("active-set", lambda: ActiveSetBroadcast(16, 3)),
    ("algorithm-1", lambda: Algorithm1(7, 3)),
    ("algorithm-1", lambda: Algorithm1(9, 4)),
    ("algorithm-3", lambda: Algorithm3(20, 3, s=4)),
    ("algorithm-5", lambda: Algorithm5(25, 3, s=3)),
]


def test_e3_message_bound_and_b_set_feeding(benchmark):
    def workload():
        rows = []
        for name, factory in CASES:
            report = theorem2_experiment(factory)
            rows.append(
                {
                    "algorithm": name,
                    "n": report.n,
                    "t": report.t,
                    "fault-free msgs": report.fault_free_messages,
                    "bound": report.bound,
                    "B": list(report.b_set),
                    "min fed": report.min_received,
                    "required": report.per_member_requirement,
                    "H' agrees": report.hprime_agreement_ok,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E3 / Theorem 2 — messages vs the Ω(n + t²) bound", rows)
    for row in rows:
        assert row["fault-free msgs"] >= row["bound"], row
        assert row["min fed"] >= row["required"], row
        assert row["H' agrees"], row


def test_e3_switch_attack_on_strawman(benchmark):
    def workload():
        rows = []
        for n, t in [(8, 2), (10, 3), (14, 4)]:
            report = theorem2_experiment(lambda: UnderSigningBroadcast(n, t))
            attack = report.attack
            rows.append(
                {
                    "n": n,
                    "t": t,
                    "B fed": report.min_received,
                    "required": report.per_member_requirement,
                    "target": attack.target,
                    "target received": attack.target_messages_received,
                    "target decided": attack.target_decision,
                    "others decided": sorted(set(attack.other_decisions.values())),
                    "agreement broken": attack.agreement_violated,
                    "|faulty|": len(attack.faulty),
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    show("E3 / Theorem 2 — starve-and-switch attack on the strawman", rows)
    for row in rows:
        assert row["B fed"] < row["required"], row
        assert row["target received"] == 0, row
        assert row["agreement broken"], row
        assert row["|faulty|"] <= row["t"], row
