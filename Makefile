PYTHON ?= python

.PHONY: test lint check bench

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Protocol linter + ruff + mypy (the latter two only when installed).
lint:
	./scripts/check.sh

check: lint test

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only
