PYTHON ?= python

.PHONY: test lint lint-protocol lint-baseline check bench bench-compare bench-batch benchmarks fuzz fuzz-smoke chaos-smoke approx-smoke serve-smoke docs-check

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Protocol linter + ruff + mypy (the latter two only when installed),
# plus the perf smoke against BENCH_runner.json when it exists.
lint:
	./scripts/check.sh

# Just the whole-program protocol analyzer (BA001-BA010), gated on the
# committed baseline — the same invocation scripts/check.sh runs.
lint-protocol:
	PYTHONPATH=src $(PYTHON) -m repro lint --baseline lint_baseline.json src/repro

# Regenerate lint_baseline.json from the current tree (reasons on
# existing entries are preserved).  Review the diff before committing.
lint-baseline:
	PYTHONPATH=src $(PYTHON) -m repro lint --baseline lint_baseline.json \
		--write-baseline src/repro

check: lint test

# Time the fixed perf basket (median of 3 trials) and (re)write the
# committed baseline point, service:* throughput cases included.
bench:
	PYTHONPATH=src $(PYTHON) -m repro bench --trials 3 --output BENCH_runner.json

# Diff a fresh bench run against the committed baseline (exit 1 on >25%).
bench-compare:
	PYTHONPATH=src $(PYTHON) -m repro bench --trials 3 --output /tmp/bench_current.json
	PYTHONPATH=src $(PYTHON) scripts/bench_compare.py BENCH_runner.json /tmp/bench_current.json

# Batch-engine perf gate: every batch:* case must reach 10x the
# messages/sec of its scalar runner baseline (same-machine ratio).
bench-batch:
	PYTHONPATH=src $(PYTHON) -m repro bench --output /tmp/bench_current.json
	PYTHONPATH=src $(PYTHON) scripts/bench_compare.py BENCH_runner.json /tmp/bench_current.json \
		--min-batch-speedup 10

# Documentation gate: links resolve, JSON examples parse, and the
# worked `$ repro ...` examples in docs/telemetry.md actually run.
docs-check:
	$(PYTHON) scripts/docs_check.py

# Full-resolution experiment benchmarks (pytest-benchmark timings).
benchmarks:
	PYTHONPATH=src:. $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Full seeded fuzz campaign over every registered algorithm (deterministic
# for a fixed seed; failures are shrunk and saved under tests/fuzz_corpus/).
fuzz:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --algorithm all --budget 200 --seed 0 \
		--save-corpus tests/fuzz_corpus

# Time-boxed CI smoke: a fixed-seed campaign sized to ~10s.
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --algorithm all --budget 300 --seed 0

# Chaos smoke: a fixed-seed campaign of benign delivery faults
# (crashes, omissions, drops, delays, duplicates, partitions) over
# every algorithm, sized to ~10s.  Deterministic for the seed; any
# failure is divergence the injected faults cannot excuse.
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --algorithm all --fault-rate 0.2 \
		--budget 300 --seed 0

# Statistical smoke for the randomized workloads: seeded KS/chi-square
# ensemble checks (coin uniformity, Ben-Or's geometric round tail,
# eps-convergence), sized well under 10s.  Deterministic for the seed.
approx-smoke:
	PYTHONPATH=src $(PYTHON) -m repro approx-smoke --seed 0

# Service smoke: a seeded open-loop traffic run (mixed workloads, 20%
# faulty) through the agreement scheduler, sized under ~10s.  The
# loadgen exits non-zero on any non-ok verdict; the follow-up assertion
# additionally pins non-zero measured throughput.  Verdicts are
# deterministic for the seed (timing figures are not).
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro loadgen --requests 600 --rate 200 \
		--seed 0 --fault-rate 0.2 --workers 2 \
		--metrics-out /tmp/serve_smoke.json
	$(PYTHON) -c "import json; case = json.load(open('/tmp/serve_smoke.json'))['cases']['service:loadgen']; assert case['failed'] == 0 and (case['agreements_per_sec'] or 0) > 0, case; print('serve-smoke: ok')"
