#!/usr/bin/env python
"""Diff two ``repro bench`` JSONs and fail on wall-clock regression.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]

Cases are matched by key; a case is a *regression* when its current
wall-clock exceeds the baseline by more than ``--threshold`` (a fraction:
0.25 means 25% slower).  Cases present in only one file are reported but
never fail the comparison — the basket is allowed to grow.

Exit code 0 means no regression, 1 means at least one case regressed,
2 means the inputs could not be read or are not bench JSONs.

Timing noise caveat: the committed ``BENCH_runner.json`` baseline was
produced on one specific machine.  Cross-machine comparisons are only
indicative; regenerate the baseline (``make bench``) when the hardware
changes, and use a generous threshold in CI smokes.
"""

from __future__ import annotations

import argparse
import json
import sys


def _die(message: str) -> "SystemExit":
    print(f"bench_compare: {message}", file=sys.stderr)
    return SystemExit(2)


def load_bench(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise _die(f"cannot read {path}: {error}")
    if not isinstance(document, dict) or "cases" not in document:
        raise _die(f"{path} is not a repro-bench JSON")
    schema = document.get("schema", "")
    if not str(schema).startswith("repro-bench/"):
        raise _die(f"{path} has unknown schema {schema!r} (expected repro-bench/*)")
    return document


def compare(baseline: dict, current: dict, threshold: float) -> int:
    if bool(baseline.get("quick")) != bool(current.get("quick")):
        raise _die(
            "refusing to compare a --quick basket against a full one (the "
            "pinned scenario sizes differ); regenerate both with the same mode"
        )
    if baseline.get("workers") != current.get("workers"):
        print(
            f"note: worker counts differ (baseline "
            f"{baseline.get('workers')}, current {current.get('workers')}); "
            f"sweep-case timings reflect that"
        )
    base_cases = baseline["cases"]
    curr_cases = current["cases"]
    shared = sorted(set(base_cases) & set(curr_cases))
    only_base = sorted(set(base_cases) - set(curr_cases))
    only_curr = sorted(set(curr_cases) - set(base_cases))

    regressions = []
    width = max((len(k) for k in shared), default=4)
    print(f"{'case':<{width}}  {'baseline s':>11}  {'current s':>11}  {'delta':>8}")
    for key in shared:
        base_s = float(base_cases[key]["seconds"])
        curr_s = float(curr_cases[key]["seconds"])
        delta = (curr_s - base_s) / base_s if base_s else 0.0
        flag = ""
        if delta > threshold:
            regressions.append((key, delta))
            flag = "  << REGRESSION"
        print(f"{key:<{width}}  {base_s:>11.4f}  {curr_s:>11.4f}  {delta:>+7.1%}{flag}")

    for key in only_base:
        print(f"{key}: only in baseline (skipped)")
    for key in only_curr:
        print(f"{key}: only in current (skipped)")

    if regressions:
        worst = max(regressions, key=lambda item: item[1])
        print(
            f"\nFAIL: {len(regressions)} case(s) slower than baseline by more "
            f"than {threshold:.0%} (worst: {worst[0]} at {worst[1]:+.1%})"
        )
        return 1
    print(f"\nOK: no case regressed beyond {threshold:.0%} over {len(shared)} case(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline bench JSON (e.g. BENCH_runner.json)")
    parser.add_argument("current", help="freshly produced bench JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed slowdown fraction before failing (default: 0.25)",
    )
    args = parser.parse_args(argv)
    baseline = load_bench(args.baseline)
    current = load_bench(args.current)
    return compare(baseline, current, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
