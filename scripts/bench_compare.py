#!/usr/bin/env python
"""Diff two ``repro bench`` JSONs and fail on wall-clock regression.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]
        [--min-batch-speedup 5] [--min-service-rate 20] [--trials 3] [--update]

Cases are matched by key and printed **worst delta first**; a case is a
*regression* when its current wall-clock exceeds the baseline by more
than ``--threshold`` (a fraction: 0.25 means 25% slower).  Cases present
in only one file are reported but never fail the comparison — the basket
is allowed to grow.

``--min-batch-speedup X`` additionally gates the batch engine: every
``batch:*`` case in the *current* file must move at least ``X`` times the
messages/sec of the scalar ``runner:*`` case it names as
``baseline_case`` (both rates come from the same file, so the gate is
machine-independent).

``--min-service-rate X`` gates the service layer the same way: every
``service:*`` case in the *current* file must report at least ``X``
agreements/sec — an absolute single-machine floor, so keep it
conservative (an order of magnitude under a healthy run).

``--trials N`` requires the *current* document to have been produced
with ``repro bench --trials N`` or more (median-of-trials timing); it
exists so CI can prove the noise-reduction knob was actually on.  A
baseline pinned with a different trial count gets a note, not a failure.

``--update`` rewrites the baseline file with the current document after
reporting — use it to re-pin ``BENCH_runner.json`` after an intentional
perf change.  Wall-clock regressions do not fail an update run (that is
the point of re-pinning); a ``--min-batch-speedup`` floor violation still
does.

Exit code 0 means no regression, 1 means at least one case regressed or
missed a floor, 2 means the inputs could not be read, are not bench
JSONs, or were produced with fewer trials than ``--trials`` demands.

Timing noise caveat: the committed ``BENCH_runner.json`` baseline was
produced on one specific machine.  Cross-machine comparisons are only
indicative; regenerate the baseline (``make bench``) when the hardware
changes, and use a generous threshold in CI smokes.  The batch-speedup
floor is a *ratio* within one file and is stable across machines.
"""

from __future__ import annotations

import argparse
import json
import sys


def _die(message: str) -> "SystemExit":
    print(f"bench_compare: {message}", file=sys.stderr)
    return SystemExit(2)


def load_bench(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise _die(f"cannot read {path}: {error}")
    if not isinstance(document, dict) or "cases" not in document:
        raise _die(f"{path} is not a repro-bench JSON")
    schema = document.get("schema", "")
    if not str(schema).startswith("repro-bench/"):
        raise _die(f"{path} has unknown schema {schema!r} (expected repro-bench/*)")
    return document


def compare(baseline: dict, current: dict, threshold: float) -> int:
    if bool(baseline.get("quick")) != bool(current.get("quick")):
        raise _die(
            "refusing to compare a --quick basket against a full one (the "
            "pinned scenario sizes differ); regenerate both with the same mode"
        )
    if baseline.get("workers") != current.get("workers"):
        print(
            f"note: worker counts differ (baseline "
            f"{baseline.get('workers')}, current {current.get('workers')}); "
            f"sweep-case timings reflect that"
        )
    base_cases = baseline["cases"]
    curr_cases = current["cases"]
    shared = sorted(set(base_cases) & set(curr_cases))
    only_base = sorted(set(base_cases) - set(curr_cases))
    only_curr = sorted(set(curr_cases) - set(base_cases))

    rows = []
    for key in shared:
        base_s = float(base_cases[key]["seconds"])
        curr_s = float(curr_cases[key]["seconds"])
        delta = (curr_s - base_s) / base_s if base_s else 0.0
        rows.append((key, base_s, curr_s, delta))
    # Worst regression first: the case a reader needs to see is on top.
    rows.sort(key=lambda row: row[3], reverse=True)

    regressions = []
    width = max((len(k) for k in shared), default=4)
    print(f"{'case':<{width}}  {'baseline s':>11}  {'current s':>11}  {'delta':>8}")
    for key, base_s, curr_s, delta in rows:
        flag = ""
        if delta > threshold:
            regressions.append((key, delta))
            flag = "  << REGRESSION"
        print(f"{key:<{width}}  {base_s:>11.4f}  {curr_s:>11.4f}  {delta:>+7.1%}{flag}")

    for key in only_base:
        print(f"{key}: only in baseline (skipped)")
    for key in only_curr:
        print(f"{key}: only in current (skipped)")

    if regressions:
        worst = max(regressions, key=lambda item: item[1])
        print(
            f"\nFAIL: {len(regressions)} case(s) slower than baseline by more "
            f"than {threshold:.0%} (worst: {worst[0]} at {worst[1]:+.1%})"
        )
        return 1
    print(f"\nOK: no case regressed beyond {threshold:.0%} over {len(shared)} case(s)")
    return 0


def check_batch_floor(document: dict, minimum: float) -> int:
    """Gate every ``batch:*`` case at *minimum*× its scalar baseline rate.

    Both rates come from *document* itself, so the check is a same-machine
    ratio.  A batch case whose ``baseline_case`` is absent, or whose rate
    (or the baseline's) is missing, fails loudly rather than passing
    silently.
    """
    cases = document["cases"]
    batch_keys = sorted(key for key in cases if str(key).startswith("batch:"))
    if not batch_keys:
        print(f"batch floor: no batch:* cases found (need >= {minimum:g}x)")
        return 1
    failures = 0
    for key in batch_keys:
        case = cases[key]
        ref_key = case.get("baseline_case")
        ref = cases.get(ref_key) if ref_key else None
        batch_rate = case.get("messages_per_sec")
        ref_rate = ref.get("messages_per_sec") if ref else None
        if not batch_rate or not ref_rate:
            print(f"{key}: cannot compute speedup vs {ref_key!r}  << FLOOR FAIL")
            failures += 1
            continue
        speedup = float(batch_rate) / float(ref_rate)
        flag = ""
        if speedup < minimum:
            failures += 1
            flag = "  << FLOOR FAIL"
        print(
            f"{key}: {float(batch_rate):,.0f} msgs/s vs {ref_key} "
            f"{float(ref_rate):,.0f} msgs/s = {speedup:.1f}x "
            f"(floor {minimum:g}x){flag}"
        )
    if failures:
        print(
            f"\nFAIL: {failures} batch case(s) under the {minimum:g}x "
            f"messages/sec floor"
        )
        return 1
    print(f"\nOK: all {len(batch_keys)} batch case(s) at >= {minimum:g}x scalar")
    return 0


def check_service_floor(document: dict, minimum: float) -> int:
    """Gate every ``service:*`` case at *minimum* agreements/sec.

    An absolute floor (unlike the batch gate's same-file ratio): the
    point is catching a service path that fell off a cliff, so the floor
    should sit well under a healthy machine's rate.  A service case with
    no ``agreements_per_sec`` fails loudly rather than passing silently.
    """
    cases = document["cases"]
    service_keys = sorted(key for key in cases if str(key).startswith("service:"))
    if not service_keys:
        print(f"service floor: no service:* cases found (need >= {minimum:g}/s)")
        return 1
    failures = 0
    for key in service_keys:
        rate = cases[key].get("agreements_per_sec")
        if not rate:
            print(f"{key}: no agreements_per_sec recorded  << FLOOR FAIL")
            failures += 1
            continue
        flag = ""
        if float(rate) < minimum:
            failures += 1
            flag = "  << FLOOR FAIL"
        print(
            f"{key}: {float(rate):,.1f} agreements/s "
            f"(floor {minimum:g}/s){flag}"
        )
    if failures:
        print(
            f"\nFAIL: {failures} service case(s) under the {minimum:g} "
            f"agreements/sec floor"
        )
        return 1
    print(
        f"\nOK: all {len(service_keys)} service case(s) at >= "
        f"{minimum:g} agreements/sec"
    )
    return 0


def check_trials(baseline: dict, current: dict, minimum: int) -> int:
    """Require CURRENT to carry a ``trials`` count of at least *minimum*."""
    current_trials = int(current.get("trials", 1))
    baseline_trials = int(baseline.get("trials", 1))
    if baseline_trials != current_trials:
        print(
            f"note: trial counts differ (baseline {baseline_trials}, "
            f"current {current_trials}); medians are still comparable"
        )
    if current_trials < minimum:
        print(
            f"FAIL: current document ran {current_trials} timing trial(s); "
            f"this gate requires --trials {minimum} or more on repro bench"
        )
        # A too-low trial count is a misconfigured input, not a perf
        # regression — same exit class as an unreadable document.
        return 2
    print(f"OK: current document ran {current_trials} timing trial(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline bench JSON (e.g. BENCH_runner.json)")
    parser.add_argument("current", help="freshly produced bench JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed slowdown fraction before failing (default: 0.25)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=None,
        metavar="X",
        help="require every batch:* case in CURRENT to reach X times the "
        "messages/sec of its baseline_case runner (same-file ratio)",
    )
    parser.add_argument(
        "--min-service-rate",
        type=float,
        default=None,
        metavar="X",
        help="require every service:* case in CURRENT to reach X "
        "agreements/sec (absolute single-machine floor; keep conservative)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="N",
        help="require CURRENT to have been produced with repro bench "
        "--trials N or more (exit 2 otherwise)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite BASELINE with CURRENT after reporting (regressions do "
        "not fail an update; floor and trial violations still do)",
    )
    args = parser.parse_args(argv)
    baseline = load_bench(args.baseline)
    current = load_bench(args.current)
    if args.trials is not None:
        trial_code = check_trials(baseline, current, args.trials)
        if trial_code:
            return trial_code
        print()
    exit_code = compare(baseline, current, args.threshold)
    floor_code = 0
    if args.min_batch_speedup is not None:
        print()
        floor_code = max(
            floor_code, check_batch_floor(current, args.min_batch_speedup)
        )
    if args.min_service_rate is not None:
        print()
        floor_code = max(
            floor_code, check_service_floor(current, args.min_service_rate)
        )
    exit_code = max(exit_code, floor_code)
    if args.update:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nupdated {args.baseline} from {args.current}")
        exit_code = floor_code
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
