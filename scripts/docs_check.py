#!/usr/bin/env python
"""Documentation gate: links resolve, examples parse, commands run.

Checks, in order:

1. **Relative links** — every ``[text](target)`` in ``README.md`` and
   ``docs/*.md`` that is not an absolute URL or a pure ``#fragment``
   must point at an existing file (anchors on existing files are
   accepted; the anchor itself is not resolved).
2. **Fenced JSON** — every ```` ```json ```` block in the checked files
   must parse.
3. **Worked examples** — the ``$ repro ...`` lines inside
   ```` ```console ```` blocks of every doc in ``COMMAND_DOCS``
   (``docs/telemetry.md``, ``docs/service.md``) are executed in order,
   one shared temporary directory per doc (as
   ``PYTHONPATH=src python -m repro ...``); each must exit 0.  Later
   commands may consume files written by earlier ones, mirroring how a
   reader would type them.
4. **Schema pins** — ``docs/telemetry.md`` must mention the current
   ``TRACE_SCHEMA`` string and ``docs/service.md`` the current
   ``SERVICE_SCHEMA`` string, so a schema bump cannot leave the docs
   describing a format the code no longer writes.

Run via ``make docs-check`` (wired into ``scripts/check.sh``).
"""

from __future__ import annotations

import json
import re
import shlex
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
#: Docs whose ``$ repro ...`` console examples are executed, each with
#: the module attribute its text must pin (``None``: no schema pin).
COMMAND_DOCS: list[tuple[Path, str | None]] = [
    (REPO / "docs" / "telemetry.md", "TRACE_SCHEMA"),
    (REPO / "docs" / "service.md", "SERVICE_SCHEMA"),
]

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE = re.compile(r"^```(\w*)\s*$")


def iter_fences(text: str):
    """Yield ``(language, body)`` for every fenced block in *text*."""
    language = None
    body: list[str] = []
    for line in text.splitlines():
        match = FENCE.match(line)
        if match and language is None:
            language = match.group(1)
            body = []
        elif line.strip() == "```" and language is not None:
            yield language, "\n".join(body)
            language = None
        elif language is not None:
            body.append(line)


def strip_fenced_code(text: str) -> str:
    """Remove fenced blocks so code snippets cannot fake markdown links."""
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if FENCE.match(line) and not in_fence:
            in_fence = True
        elif line.strip() == "```" and in_fence:
            in_fence = False
        elif not in_fence:
            out.append(line)
    return "\n".join(out)


def check_links(path: Path, errors: list[str]) -> None:
    text = strip_fenced_code(path.read_text(encoding="utf-8"))
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        file_part = target.split("#", 1)[0]
        if not (path.parent / file_part).exists():
            errors.append(f"{path.relative_to(REPO)}: broken link -> {target}")


def check_json_fences(path: Path, errors: list[str]) -> None:
    for language, body in iter_fences(path.read_text(encoding="utf-8")):
        if language != "json" or not body.strip():
            continue
        try:
            json.loads(body)
        except ValueError as error:
            errors.append(
                f"{path.relative_to(REPO)}: unparseable json fence ({error})"
            )


def doc_commands(path: Path) -> list[list[str]]:
    """The ``$ repro ...`` lines from the console fences, in order."""
    commands: list[list[str]] = []
    for language, body in iter_fences(path.read_text(encoding="utf-8")):
        if language != "console":
            continue
        for line in body.splitlines():
            line = line.strip()
            if line.startswith("$ repro "):
                commands.append(shlex.split(line[len("$ repro ") :]))
    return commands


def run_doc_commands(path: Path, errors: list[str]) -> int:
    commands = doc_commands(path)
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as workdir:
        for arguments in commands:
            completed = subprocess.run(
                [sys.executable, "-m", "repro", *arguments],
                cwd=workdir,
                env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
                capture_output=True,
                text=True,
            )
            if completed.returncode != 0:
                errors.append(
                    f"{path.relative_to(REPO)}: `repro "
                    f"{' '.join(arguments)}` exited "
                    f"{completed.returncode}:\n{completed.stderr.strip()}"
                )
    return len(commands)


def check_schema_pin(path: Path, attribute: str, errors: list[str]) -> None:
    """Fail unless *path* mentions the current value of ``repro.<attribute>``."""
    sys.path.insert(0, str(REPO / "src"))
    try:
        from repro.obs import TRACE_SCHEMA
        from repro.service import SERVICE_SCHEMA
    finally:
        sys.path.remove(str(REPO / "src"))
    schema = {"TRACE_SCHEMA": TRACE_SCHEMA, "SERVICE_SCHEMA": SERVICE_SCHEMA}[
        attribute
    ]
    if schema not in path.read_text(encoding="utf-8"):
        errors.append(
            f"{path.relative_to(REPO)}: does not mention the current "
            f"{attribute.split('_')[0].lower()} schema {schema!r}"
        )


def main() -> int:
    errors: list[str] = []
    for path in DOC_FILES:
        check_links(path, errors)
        check_json_fences(path, errors)
    executed = 0
    for path, pin in COMMAND_DOCS:
        if not path.exists():
            errors.append(f"{path.relative_to(REPO)}: command doc is missing")
            continue
        executed += run_doc_commands(path, errors)
        if pin is not None:
            check_schema_pin(path, pin, errors)
    files = ", ".join(str(p.relative_to(REPO)) for p in DOC_FILES)
    print(f"docs-check: {len(DOC_FILES)} files ({files}); "
          f"{executed} documented commands executed")
    if errors:
        for error in errors:
            print(f"docs-check: {error}", file=sys.stderr)
        return 1
    print("docs-check: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
