#!/usr/bin/env bash
# Full static-analysis gate: the repo's own protocol linter, then the
# conventional checkers when they are installed (pip install -e '.[lint]').
# The protocol linter is dependency-free and always runs.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0

echo "== repro lint =="
PYTHONPATH=src python -m repro lint src/repro || status=1

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests || status=1
else
    echo "== ruff == (not installed, skipped)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy || status=1
else
    echo "== mypy == (not installed, skipped)"
fi

exit "$status"
