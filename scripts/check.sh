#!/usr/bin/env bash
# Full static-analysis gate: the repo's own protocol linter, then the
# conventional checkers when they are installed (pip install -e '.[lint]'),
# then an optional perf smoke against the committed bench baseline.
# The protocol linter is dependency-free and always runs.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0

echo "== repro lint =="
# SARIF + baseline gate: fail on any finding not grandfathered in
# lint_baseline.json; the SARIF output itself goes to /dev/null here
# (CI uploads capture it separately), so rerun in text mode on failure
# for a human-readable diagnosis.
if ! PYTHONPATH=src python -m repro lint --format=sarif \
        --baseline lint_baseline.json src/repro >/dev/null; then
    PYTHONPATH=src python -m repro lint --baseline lint_baseline.json src/repro || true
    status=1
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests || status=1
else
    echo "== ruff == (not installed, skipped)"
fi

if command -v mypy >/dev/null 2>&1; then
    echo "== mypy =="
    mypy || status=1
else
    echo "== mypy == (not installed, skipped)"
fi

# Docs gate: links, fenced JSON examples, and the runnable `$ repro ...`
# examples in docs/telemetry.md and docs/service.md.  Dependency-free;
# disable with DOCS_CHECK=0.
if [ "${DOCS_CHECK:-1}" != "0" ]; then
    echo "== docs check =="
    python scripts/docs_check.py || status=1
else
    echo "== docs check == (DOCS_CHECK=0, skipped)"
fi

# Optional perf smoke: time the fixed basket and diff it against the
# committed baseline.  Skipped when no baseline JSON exists or when
# PERF_SMOKE=0; wall-clock comparisons across different machines are noisy,
# so the smoke uses a generous threshold (override: PERF_SMOKE_THRESHOLD).
# The basket runs fault-free, so this also pins the transport fast path:
# routing through the Transport layer must stay within the committed
# BENCH_runner.json envelope.  The batch engine is additionally held to a
# same-machine floor: every batch:* case must move at least
# BATCH_SMOKE_SPEEDUP (default 5) times the messages/sec of its scalar
# runner baseline — a *ratio* within one run, so it is noise-tolerant.
# The service layer is held to an absolute SERVE_RATE_FLOOR (default 20)
# agreements/sec on every service:* case — set an order of magnitude
# under a healthy run, so only a cliff trips it.  Timings are the median
# of PERF_SMOKE_TRIALS (default 3) independent trials, which strips
# whole-trial outliers; bench_compare --trials verifies the knob was on.
if [ -f BENCH_runner.json ] && [ "${PERF_SMOKE:-1}" != "0" ]; then
    echo "== perf smoke =="
    current="$(mktemp /tmp/bench_current.XXXXXX.json)"
    if PYTHONPATH=src python -m repro bench \
            --trials "${PERF_SMOKE_TRIALS:-3}" --output "$current" >/dev/null; then
        PYTHONPATH=src python scripts/bench_compare.py BENCH_runner.json "$current" \
            --threshold "${PERF_SMOKE_THRESHOLD:-0.5}" \
            --trials "${PERF_SMOKE_TRIALS:-3}" \
            --min-batch-speedup "${BATCH_SMOKE_SPEEDUP:-5}" \
            --min-service-rate "${SERVE_RATE_FLOOR:-20}" || status=1
    else
        echo "perf smoke: repro bench failed"
        status=1
    fi
    rm -f "$current"
else
    echo "== perf smoke == (no baseline or PERF_SMOKE=0, skipped)"
fi

# Fuzz smoke: a fixed-seed campaign over every algorithm, sized to ~10s.
# The campaign is deterministic in its seed, so this is a stable gate;
# any failure means a generated adversary broke an agreement or declared
# bound.  Disable with FUZZ_SMOKE=0.
if [ "${FUZZ_SMOKE:-1}" != "0" ]; then
    echo "== fuzz smoke =="
    PYTHONPATH=src python -m repro fuzz --algorithm all --budget 300 --seed 0 || status=1
else
    echo "== fuzz smoke == (FUZZ_SMOKE=0, skipped)"
fi

# Chaos smoke: the fuzz campaign again, but with seeded benign delivery
# faults (crash/omission/drop/delay/duplicate/partition) injected through
# the FaultyTransport.  Deterministic for the seed; a failure means the
# oracle saw divergence the injected faults cannot excuse.  Disable with
# CHAOS_SMOKE=0.
if [ "${CHAOS_SMOKE:-1}" != "0" ]; then
    echo "== chaos smoke =="
    PYTHONPATH=src python -m repro fuzz --algorithm all --fault-rate 0.2 \
        --budget 300 --seed 0 || status=1
else
    echo "== chaos smoke == (CHAOS_SMOKE=0, skipped)"
fi

# Approx smoke: seeded ensemble statistics for the randomized workloads
# (coin-stream KS uniformity, Ben-Or's geometric round tail by chi-square,
# eps-convergence of the approximate-agreement pair).  Deterministic for
# the seed and well under 10s.  Disable with APPROX_SMOKE=0.
if [ "${APPROX_SMOKE:-1}" != "0" ]; then
    echo "== approx smoke =="
    PYTHONPATH=src python -m repro approx-smoke --seed 0 || status=1
else
    echo "== approx smoke == (APPROX_SMOKE=0, skipped)"
fi

# Service smoke: a seeded mixed-workload traffic run (20% faulty) through
# the agreement scheduler.  `make serve-smoke` exits non-zero on any
# non-ok verdict (a disagreement the injected faults cannot excuse) or
# on zero measured throughput.  Disable with SERVE_SMOKE=0.
if [ "${SERVE_SMOKE:-1}" != "0" ]; then
    echo "== serve smoke =="
    make --no-print-directory serve-smoke || status=1
else
    echo "== serve smoke == (SERVE_SMOKE=0, skipped)"
fi

exit "$status"
