#!/usr/bin/env python3
"""Explore the phases-vs-messages trade-off across the paper's algorithms.

The paper's algorithms span a frontier: Dolev–Strong-style baselines spend
O(nt) messages in few phases; Algorithm 3 and Algorithm 5 trade extra
phases (longer chain sets / taller trees) for fewer messages, down to the
optimal O(n + t²).  This script sweeps the tuning parameters and prints
the frontier for a fixed system size.

Usage::

    python examples/tradeoff_exploration.py [n] [t]
"""

import math
import sys

from repro.algorithms.active_set import ActiveSetBroadcast
from repro.algorithms.algorithm3 import Algorithm3
from repro.algorithms.algorithm5 import Algorithm5
from repro.analysis.tables import format_table
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def measure(algorithm, label: str, params: str) -> dict:
    result = run(algorithm, 1, record_history=False)
    assert check_byzantine_agreement(result).ok
    return {
        "algorithm": label,
        "parameters": params,
        "phases": algorithm.num_phases(),
        "messages": result.metrics.messages_by_correct,
        "signatures": result.metrics.signatures_by_correct,
    }


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    t = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    rows = [measure(ActiveSetBroadcast(n, t), "active-set [9]", "-")]

    for alpha in (1, 2, t):
        s = math.ceil(t / alpha)
        rows.append(
            measure(
                Algorithm3(n, t, s=s),
                "algorithm-3",
                f"α={alpha} (s={s})",
            )
        )
    rows.append(measure(Algorithm3(n, t), "algorithm-3", f"s=4t={4 * t} (Thm 5)"))

    for s in sorted({1, t, 2 * t + 1}):
        rows.append(measure(Algorithm5(n, t, s=s), "algorithm-5", f"s={s}"))

    print(f"\nPhases vs messages at n={n}, t={t} (fault-free worst case)\n")
    print(format_table(rows))
    print(
        "\nReading: moving down within each algorithm buys fewer messages "
        "with more phases;\nAlgorithm 5's rows carry many signatures per "
        "message — the price Theorem 1 says\nany sub-Ω(nt)-message "
        "algorithm must pay."
    )


if __name__ == "__main__":
    main()
