#!/usr/bin/env python3
"""Quickstart: reach Byzantine Agreement and inspect the exchange costs.

Runs the paper's message-optimal Algorithm 5 on a 100-processor system
with up to 3 Byzantine faults, fault-free and under an equivocating
transmitter, and prints the cost ledger next to the paper's bounds.

Usage::

    python examples/quickstart.py
"""

from repro import (
    Algorithm5,
    EquivocatingTransmitter,
    check_byzantine_agreement,
    formulas,
    run,
)


def main() -> None:
    n, t = 100, 3
    algorithm = Algorithm5(n=n, t=t)  # s = t: the O(n + t²) configuration

    print(f"System: n = {n} processors, up to t = {t} Byzantine faults")
    print(f"Algorithm 5 with s = {algorithm.s}: {algorithm.num_phases()} phases, "
          f"α = {algorithm.alpha} active processors\n")

    # --- fault-free run -------------------------------------------------
    result = run(algorithm, input_value=1)
    report = check_byzantine_agreement(result)
    assert report.ok
    print("Fault-free run (transmitter sends 1):")
    print(f"  agreed value        : {result.unanimous_value()}")
    print(f"  messages (correct)  : {result.metrics.messages_by_correct}")
    print(f"  signatures (correct): {result.metrics.signatures_by_correct}")
    print(f"  paper's scale n + t²: {formulas.theorem7_message_scale(n, t)}")
    print(f"  lower bound (Thm 2) : {formulas.theorem2_message_lower_bound(n, t)}\n")

    # --- Byzantine transmitter ------------------------------------------
    adversary = EquivocatingTransmitter(0, {q: q % 2 for q in range(1, n)})
    result = run(Algorithm5(n=n, t=t), input_value=0, adversary=adversary)
    report = check_byzantine_agreement(result)
    assert report.ok
    print("Equivocating transmitter (half the system told 0, half told 1):")
    print(f"  correct processors still agree on: {result.unanimous_value()}")
    print(f"  messages (correct)  : {result.metrics.messages_by_correct}")
    print(f"  validation          : {report}")


if __name__ == "__main__":
    main()
