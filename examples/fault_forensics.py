#!/usr/bin/env python3
"""Fault forensics: find out *who* misbehaved and *when* from a trace.

The paper's Section 2 defines correctness behaviourally: a processor is
correct at phase k if its phase-k messages are exactly what its rule
prescribes given what it had seen.  That definition is executable — replay
every processor's rule against the recorded history and diff.

This script runs Byzantine Agreement with a hidden mixed-fault adversary,
then plays detective: the conformance checker names the culprits and their
first deviation, and the trace shows the deviating phase.  It also shows
the definition's subtlety: a corrupted processor that happened to behave
is *correct in the history* — indistinguishable in principle from an
honest one, which is exactly why BA must be robust to any t processors,
not to t known villains.

Usage::

    python examples/fault_forensics.py
"""

from repro.adversary.standard import (
    ComposedAdversary,
    CrashAdversary,
    GarbageAdversary,
    SelectiveSilenceAdversary,
    SimulatingAdversary,
)
from repro.algorithms.dolev_strong import DolevStrong
from repro.analysis.trace import render_trace
from repro.core.conformance import check_conformance
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def main() -> None:
    n, t = 8, 3
    adversary = ComposedAdversary(
        [
            CrashAdversary({2: 2}),  # crashes before its relay duty
            SelectiveSilenceAdversary([5], muted=[1, 3]),  # snubs two peers
            SimulatingAdversary([6]),  # corrupted but behaves perfectly
        ]
    )
    algorithm = DolevStrong(n, t)
    result = run(algorithm, 1, adversary)
    report = check_byzantine_agreement(result)
    print(f"run: {algorithm.name}, n={n}, t={t}, corrupted={sorted(result.faulty)}")
    print(f"outcome: {report}; decided {result.unanimous_value()!r}\n")

    print("Replaying every processor's correctness rule against the history:")
    verdicts = check_conformance(result, DolevStrong(n, t))
    for pid in range(n):
        verdict = verdicts[pid]
        if verdict.correct_in_history:
            tag = "corrupted, but behaved" if pid in result.faulty else "correct"
            print(f"  processor {pid}: conforms at every phase ({tag})")
        else:
            deviation = verdict.deviations[0]
            print(f"  processor {pid}: DEVIATES — {deviation.describe()}")

    behavioural = sorted(
        pid for pid, v in verdicts.items() if not v.correct_in_history
    )
    print(f"\nbehaviourally faulty: {behavioural}")
    print("note: 6 was corrupted yet conforms — Section 2's correctness is a")
    print("property of behaviour in the history, not of who held the keys.\n")

    first_culprit = behavioural[0]
    phase = verdicts[first_culprit].first_deviation_phase
    print(f"The evidence — traffic touching processor {first_culprit} "
          f"around phase {phase}:")
    print(
        render_trace(
            result,
            processors={first_culprit},
            max_messages_per_phase=6,
        )
    )


if __name__ == "__main__":
    main()
