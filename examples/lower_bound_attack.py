#!/usr/bin/env python3
"""Execute the paper's two lower-bound proofs as live attacks.

The proofs of Theorems 1 and 2 are constructive: *if* an algorithm
communicates below the bound, a specific adversary breaks it.  This script
runs both constructions against a deliberately cheap algorithm (one signed
broadcast, then silence) and shows the agreement violations, then runs the
same machinery against the paper's Algorithm 1 and shows why it survives.

Usage::

    python examples/lower_bound_attack.py
"""

from repro.algorithms.algorithm1 import Algorithm1
from repro.algorithms.cheap_strawman import UnderSigningBroadcast
from repro.bounds.theorem1 import theorem1_experiment
from repro.bounds.theorem2 import theorem2_experiment


def attack_with_theorem1() -> None:
    print("=" * 72)
    print("Theorem 1 — the splitting adversary (signature lower bound)")
    print("=" * 72)
    n, t = 6, 2
    report = theorem1_experiment(lambda: UnderSigningBroadcast(n, t))
    print(f"strawman: one signed broadcast, n={n}, t={t}")
    print(f"  per-processor signature exchange |A(p)|: "
          f"{ {p: len(a) for p, a in report.exchange_sets.items()} }")
    print(f"  required by Theorem 1: at least t + 1 = {t + 1} each")
    attack = report.attack
    print(f"  -> corrupting A(p) = {sorted(attack.faulty)} of target p = {attack.target}:")
    print(f"     p's view identical to history H : {attack.target_view_matches_h}")
    print(f"     p decided {attack.target_decision!r}; the others decided "
          f"{sorted(set(attack.other_decisions.values()))!r}")
    print(f"     agreement violated: {attack.agreement_violated}\n")

    report = theorem1_experiment(lambda: Algorithm1(2 * t + 1, t))
    print(f"Algorithm 1 (n={2 * t + 1}, t={t}) under the same analysis:")
    print(f"  min |A(p)| = {report.min_exchange} >= {t + 1} — no processor is "
          f"splittable; the adversary has nothing to corrupt.\n")


def attack_with_theorem2() -> None:
    print("=" * 72)
    print("Theorem 2 — starve and switch (message lower bound)")
    print("=" * 72)
    n, t = 8, 2
    report = theorem2_experiment(lambda: UnderSigningBroadcast(n, t))
    print(f"strawman, n={n}, t={t}: B = {report.b_set} plays deaf "
          f"(ignores first {t // 2 + t % 2} messages, silent within B)")
    print(f"  messages fed to each B member by correct processors: "
          f"{report.received_by_b}")
    print(f"  Theorem 2 requires at least ⌈1 + t/2⌉ = "
          f"{report.per_member_requirement} each")
    attack = report.attack
    print(f"  -> switching {attack.target} back to correct and corrupting its "
          f"feeders {sorted(attack.faulty - set(report.b_set))}:")
    print(f"     {attack.target} received {attack.target_messages_received} "
          f"messages, decided {attack.target_decision!r}")
    print(f"     the others decided {sorted(set(attack.other_decisions.values()))!r}")
    print(f"     agreement violated: {attack.agreement_violated}\n")

    report = theorem2_experiment(lambda: Algorithm1(9, 4))
    print(f"Algorithm 1 (n=9, t=4) under the same adversary:")
    print(f"  every B member is fed {report.received_by_b} messages "
          f"(needs {report.per_member_requirement}) — not starvable, "
          f"agreement holds: {report.hprime_agreement_ok}")


if __name__ == "__main__":
    attack_with_theorem1()
    attack_with_theorem2()
