#!/usr/bin/env python3
"""A realistic scenario: committing a configuration change in a cluster.

A 64-node cluster must agree on a configuration epoch proposed by a
coordinator, while tolerating up to 4 arbitrary node failures — including
the coordinator itself lying to different replicas.  This is the classic
motivation for Byzantine Agreement in the paper's introduction
("maintaining coordination and synchronization among the participating
processors").

The script:

1. commits an epoch with Algorithm 5 under a mixed-fault adversary
   (a crashed rack neighbour, a garbage-spewing NIC, a lying coordinator);
2. shows the transferable *proof of agreement* from Algorithm 2 — the
   artifact an external auditor can verify without replaying the protocol;
3. compares the message bill against the Dolev–Strong baseline.

Usage::

    python examples/cluster_broadcast.py
"""

from repro.adversary.standard import (
    ComposedAdversary,
    CrashAdversary,
    EquivocatingTransmitter,
    GarbageAdversary,
)
from repro.algorithms.algorithm2 import Algorithm2
from repro.algorithms.algorithm5 import Algorithm5
from repro.algorithms.dolev_strong import DolevStrong
from repro.core.runner import run
from repro.core.validation import check_byzantine_agreement


def commit_epoch() -> None:
    """A go/no-go decision with Algorithm 5 (the paper's binary setting)."""
    n, t = 64, 4
    print(f"Cluster of {n} nodes, tolerating t = {t} faults")
    print("Decision: commit (1) or abort (0) the proposed placement change\n")

    adversary = ComposedAdversary(
        [
            # the coordinator tells odd nodes to abort, even nodes to commit.
            EquivocatingTransmitter(0, {q: q % 2 for q in range(1, n)}),
            # one node crashed mid-protocol, one sprays garbage.
            CrashAdversary({17: 5}),
            GarbageAdversary([33]),
        ]
    )

    algorithm = Algorithm5(n, t)
    result = run(algorithm, 1, adversary)
    report = check_byzantine_agreement(result)
    print(f"Algorithm 5 ({algorithm.num_phases()} phases):")
    print(f"  byzantine agreement : {report}")
    print(f"  cluster decision    : {'commit' if result.unanimous_value() else 'abort'}"
          f" (unanimous despite the lying coordinator)")
    print(f"  messages (correct)  : {result.metrics.messages_by_correct}")
    print(f"  faulty traffic seen : {result.metrics.messages_by_faulty}\n")


def commit_epoch_payload() -> None:
    """Agreeing on the epoch *number* itself: the multivalued composition.

    The paper's algorithms are binary; richer domains run one binary copy
    per bit (the 'slight modification' Section 5 alludes to)."""
    from repro.algorithms.multivalued import MultivaluedAgreement

    n, t, epoch = 16, 3, 7
    algorithm = MultivaluedAgreement(n, t, width=4, inner_factory=DolevStrong)
    result = run(algorithm, epoch, CrashAdversary({5: 2, 11: 3}))
    assert check_byzantine_agreement(result).ok
    print(f"Epoch number via {algorithm.name} (4 bits, n={n}, t={t}):")
    print(f"  committed epoch     : {result.unanimous_value()}")
    print(f"  messages (correct)  : {result.metrics.messages_by_correct}\n")


def auditable_proof() -> None:
    n, t = 9, 4
    epoch = 1
    print(f"Auditable commit among the {n} coordinators (Algorithm 2):")
    result = run(Algorithm2(n, t), epoch)
    assert check_byzantine_agreement(result).ok
    some_node = result.processors[3]
    proof = some_node.best_proof
    print(f"  node 3 holds a proof: value {proof.value!r} signed by "
          f"{proof.signers}")
    print(f"  verifiable by an outsider with the public keys alone: "
          f"{proof.verify(some_node.ctx.service)}")
    print(f"  at least t+1 = {t + 1} signers means at least one correct "
          f"signer vouches for the value.\n")


def message_bill() -> None:
    n, t = 64, 4
    print(f"Message bill comparison at n = {n}, t = {t} (fault-free):")
    for algorithm in (DolevStrong(n, t), Algorithm5(n, t)):
        result = run(algorithm, 1, record_history=False)
        assert check_byzantine_agreement(result).ok
        print(f"  {algorithm.name:<14} {result.metrics.messages_by_correct:>7} messages "
              f"in {algorithm.num_phases():>3} phases")


if __name__ == "__main__":
    commit_epoch()
    commit_epoch_payload()
    auditable_proof()
    message_bill()
